#include "db/compliant_db.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

#include "btree/integrity.h"
#include "txn/slot_buffer.h"
#include "db/snapshot_reader.h"
#include "common/coding.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace complydb {

namespace {
constexpr char kExpiryTableName[] = "__expiry";
constexpr char kHoldsTableName[] = "__holds";

std::string CleanMarkerPath(const std::string& dir) {
  return dir + "/CLEAN";
}

struct DbMetrics {
  obs::Counter* regret_ticks;
  obs::Histogram* regret_tick_us;
  obs::Histogram* commit_us;
  DbMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    regret_ticks = reg.GetCounter("db.regret_ticks");
    regret_tick_us = reg.GetHistogram("db.regret_tick_us");
    commit_us = reg.GetHistogram("db.commit_us");
  }
};
DbMetrics& Dm() {
  static DbMetrics m;
  return m;
}
}  // namespace

Result<CompliantDB*> CompliantDB::Open(const DbOptions& options) {
  auto db = std::unique_ptr<CompliantDB>(new CompliantDB(options));
  Status s = db->Init();
  if (!s.ok()) return s;
  return db.release();
}

CompliantDB::~CompliantDB() {
  // Detach the trace-ring timestamp source before a caller-owned clock can
  // be destroyed (no-op if another DB already attached its own).
  if (clock_ != nullptr) obs::TraceRing::Global().ClearClock(clock_);
}

Status CompliantDB::Init() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) return Status::IOError("create dir: " + ec.message());

  if (options_.clock != nullptr) {
    clock_ = options_.clock;
  } else {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  }
  // Trace events timestamp against the database's clock so they line up
  // with commit times in simulated-clock runs.
  obs::TraceRing::Global().SetClock(clock_);

  // Embedded telemetry endpoint (opt-in). Bind failures are reported but
  // never fail the open: losing /metrics must not take the database with
  // it, and the scrape job's non-200 makes the loss visible anyway.
  uint16_t telemetry_port = options_.telemetry_port;
  if (const char* env = std::getenv("COMPLYDB_TELEMETRY_PORT")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v <= 65535) {
      telemetry_port = static_cast<uint16_t>(v);
    }
  }
  if (telemetry_port != 0) {
    auto server = obs::TelemetryServer::Start(telemetry_port);
    if (server.ok()) {
      telemetry_ = std::move(server.value());
    } else {
      std::fprintf(stderr, "complydb: telemetry disabled: %s\n",
                   server.status().ToString().c_str());
    }
  }

  auto worm = WormStore::Open(options_.dir + "/worm", clock_);
  if (!worm.ok()) return worm.status();
  worm_.reset(worm.value());
  worm_->set_flush_latency_micros(options_.worm_flush_latency_micros);

  auto disk = DiskManager::Open(db_path());
  if (!disk.ok()) return disk.status();
  disk_.reset(disk.value());
  disk_->set_latency_micros(options_.io_latency_micros);
  if (options_.io_read_latency_micros != 0) {
    disk_->set_read_latency_micros(options_.io_read_latency_micros);
  }

  auto wal = LogManager::Open(wal_path());
  if (!wal.ok()) return wal.status();
  wal_.reset(wal.value());

  size_t shards = options_.cache_shards;
  if (shards == 0) {
    // Auto-sharding: enough shards that concurrent snapshot readers'
    // misses overlap their (simulated) I/O, few enough that each shard
    // still holds a useful LRU (>= ~8 frames per shard).
    size_t limit = std::min<size_t>(
        16, std::max<size_t>(1, options_.cache_pages / 8));
    shards = 1;
    while (shards * 2 <= limit) shards *= 2;
  }
  cache_ = std::make_unique<BufferCache>(disk_.get(), options_.cache_pages,
                                         shards);

  bool fresh = disk_->PageCount() == 0;
  bool crashed = !fresh && !fs::exists(CleanMarkerPath(options_.dir));
  if (options_.read_only) {
    if (fresh) return Status::InvalidArgument("read-only open of empty db");
  } else {
    fs::remove(CleanMarkerPath(options_.dir), ec);
  }

  if (fresh) {
    // Meta page 0: the catalog. Written before any hook is attached.
    Page* meta = nullptr;
    Result<PageId> alloc = cache_->NewPage(&meta);
    if (!alloc.ok()) return alloc.status();
    if (alloc.value() != kMetaPage) return Status::Corruption("meta pgno");
    meta->Format(kMetaPage, PageType::kMeta, 0, 0);
    cache_->Unpin(kMetaPage, true);
    CDB_RETURN_IF_ERROR(SaveCatalog());
    CDB_RETURN_IF_ERROR(cache_->FlushAll());
  }

  // Async shipping can be forced on or off from the environment (CI runs
  // the whole suite both ways without rebuilding).
  if (const char* env = std::getenv("COMPLYDB_COMPLIANCE_ASYNC")) {
    options_.compliance.async_shipping = env[0] != '0' && env[0] != '\0';
  }
  if (options_.read_only) {
    // A read-only facade must not spawn a writer thread nor repair the
    // stamp index (both write to WORM).
    options_.compliance.async_shipping = false;
    options_.compliance.repair_stamp_index = false;
  }

  // Multi-writer commit pipeline (DESIGN.md, "The epoch/sequencer commit
  // pipeline"). Resolved before the logger exists because the pipeline's
  // epoch barrier requires the async shipper: the sync-mode FlushThrough
  // mutates logger state without the logger mutex, and per-hook sync
  // flushes would re-serialize the slots anyway.
  write_threads_ = options_.write_threads == 0 ? 1 : options_.write_threads;
  if (const char* env = std::getenv("COMPLYDB_WRITE_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      write_threads_ = static_cast<uint32_t>(v);
    }
  }
  if (options_.read_only) write_threads_ = 1;
  if (write_threads_ > 1 && options_.compliance.enabled) {
    options_.compliance.async_shipping = true;
  }

  // Compliance epoch discovery from WORM (the trustworthy namespace).
  logger_ = std::make_unique<ComplianceLogger>(options_.compliance,
                                               worm_.get(), disk_.get(),
                                               clock_);
  std::unique_ptr<Snapshot> snapshot;
  if (options_.compliance.enabled) {
    uint64_t max_epoch = 0;
    bool found = false;
    for (const auto& name : worm_->ListPrefix("L_")) {
      uint64_t e = std::strtoull(name.c_str() + 2, nullptr, 10);
      max_epoch = std::max(max_epoch, e);
      found = true;
    }
    if (!found) {
      epoch_ = 0;
      CDB_RETURN_IF_ERROR(logger_->StartFreshEpoch(0));
    } else {
      epoch_ = max_epoch;
      if (worm_->Exists(SnapshotFileName(epoch_))) {
        auto snap = Snapshot::ReadVerified(worm_.get(), epoch_,
                                           options_.auditor_key);
        if (!snap.ok()) return snap.status();
        snapshot = std::make_unique<Snapshot>(snap.TakeValue());
        last_audit_time_ = snapshot->audit_time;
      }
      CDB_RETURN_IF_ERROR(logger_->AttachToEpoch(epoch_, snapshot.get()));
    }
  }

  // Hook order: WAL rule first, then compliance (see WalFlushHook).
  wal_hook_ = std::make_unique<WalFlushHook>(wal_.get());
  if (!options_.read_only) {
    cache_->AddHook(wal_hook_.get());
    if (options_.compliance.enabled) cache_->AddHook(logger_.get());
  }

  txns_ = std::make_unique<TransactionManager>(
      wal_.get(), clock_,
      options_.compliance.enabled ? logger_.get() : nullptr);

  if (write_threads_ > 1) {
    CommitPipeline::BarrierFn barrier;
    if (options_.compliance.enabled) {
      // One durability barrier per epoch: flush the deferred WAL tail
      // mirror (one WORM round trip for the whole epoch's commits), then
      // wait the epoch's compliance records durable through the shipper.
      // The local WAL fflush already happened per-commit at sequencing.
      ComplianceLogger* logger = logger_.get();
      LogManager* wal = wal_.get();
      barrier = [logger, wal](uint64_t offset) {
        CDB_RETURN_IF_ERROR(wal->FlushTailMirror());
        return logger->WaitCommitDurable(offset);
      };
      wal_->set_tail_deferred(true);
    }
    pipeline_ = std::make_unique<CommitPipeline>(std::move(barrier));
    // Disjoint-slot scheduling (DESIGN.md, "Disjoint-slot scheduling").
    // Forced off under hash_on_read: execute-phase reads would append
    // READ_HASH records at thread-dependent times, breaking L identity.
    bool scheduler_on = options_.slot_scheduler;
    if (const char* env = std::getenv("COMPLYDB_SLOT_SCHEDULER")) {
      scheduler_on = env[0] != '0' && env[0] != '\0';
    }
    if (scheduler_on && !options_.compliance.hash_on_read) {
      pipeline_->EnableScheduler();
    }
    txns_->SetPipeline(pipeline_.get());
  }

  // Epoch sealing (DESIGN.md, "Incremental certification"): every durable
  // commit epoch extends the hash chain on WORM, making it an audit unit.
  // A pre-existing chain that fails verification disables sealing for
  // this run rather than blocking the open — the auditor owns the tamper
  // verdict, and a database that cannot open cannot be audited online.
  if (options_.compliance.enabled && !options_.read_only) {
    sealer_ = std::make_unique<EpochSealer>(worm_.get());
    Status attach = sealer_->Attach(epoch_);
    if (!attach.ok()) {
      std::fprintf(stderr, "complydb: epoch sealing disabled: %s\n",
                   attach.ToString().c_str());
      sealer_.reset();
    } else if (pipeline_ != nullptr) {
      // The epoch leader seals right after its durability barrier, outside
      // every pipeline lock. The hook must never fail the commit: a seal
      // error only delays certification, and the next barrier retries.
      EpochSealer* sealer = sealer_.get();
      const uint64_t min_bytes = options_.seal_min_bytes;
      pipeline_->set_seal_fn([sealer, min_bytes](uint64_t offset) {
        if (min_bytes != 0 &&
            offset < sealer->sealed_offset() + min_bytes) {
          return;
        }
        Status seal = sealer->SealThrough(offset);
        if (!seal.ok()) {
          std::fprintf(stderr, "complydb: epoch seal failed: %s\n",
                       seal.ToString().c_str());
        }
      });
    }
  }

  hist_ = std::make_unique<HistoricalStore>(worm_.get());
  CDB_RETURN_IF_ERROR(hist_->LoadAll());
  // Historical files shredded this epoch (their WORM deletion waits for
  // the next audit) must not resurface in the temporal index.
  if (options_.compliance.enabled && logger_->log() != nullptr) {
    CDB_RETURN_IF_ERROR(
        logger_->log()->Scan([&](const CRecord& rec, uint64_t) -> Status {
          if (rec.type == CRecordType::kShredded && !rec.name.empty()) {
            Status s = hist_->DropFile(rec.name);
            if (!s.ok() && !s.IsNotFound()) return s;
          }
          return Status::OK();
        }));
  }
  if (options_.tsb_enabled) {
    split_policy_ =
        std::make_unique<TimeSplitPolicy>(options_.tsb_split_threshold);
  }

  // The catalog may be ahead on the WAL (a crash right after CreateTable):
  // redo meta-page images first, so LoadCatalog registers every tree that
  // full recovery will need for undo.
  if (crashed && !options_.read_only) {
    Page* meta = nullptr;
    CDB_RETURN_IF_ERROR(cache_->FetchPage(kMetaPage, &meta));
    PageGuard guard(cache_.get(), kMetaPage, meta);
    CDB_RETURN_IF_ERROR(wal_->Scan([&](const WalRecord& rec) -> Status {
      if (rec.type == WalRecordType::kPageImage && rec.pgno == kMetaPage &&
          (!meta->IsFormatted() || meta->lsn() < rec.lsn)) {
        std::memcpy(meta->data(), rec.page_image.data(), kPageSize);
        meta->set_lsn(rec.lsn);
        guard.MarkDirty();
      }
      return Status::OK();
    }));
  }
  CDB_RETURN_IF_ERROR(LoadCatalog());

  if (options_.read_only) {
    // Inspection mode: rebuild the committed-transaction table from the
    // WAL without applying anything.
    CDB_RETURN_IF_ERROR(wal_->Scan([&](const WalRecord& rec) -> Status {
      if (rec.txn_id != 0) txns_->BumpTick(rec.txn_id);
      if (rec.type == WalRecordType::kCommit) {
        txns_->RestoreCommittedTxn(rec.txn_id, rec.commit_time);
      }
      return Status::OK();
    }));
    recovered_from_crash_ = false;
  } else {
    // Crash recovery (a no-op analysis pass on clean opens, which also
    // rebuilds the committed-transaction table for temporal reads).
    RecoveryManager recovery(wal_.get(), cache_.get(), txns_.get(),
                             options_.compliance.enabled ? logger_.get()
                                                         : nullptr,
                             last_audit_time_);
    auto report = recovery.Run(crashed);
    if (!report.ok()) return report.status();
    recovery_report_ = report.value();
    recovered_from_crash_ = crashed;
  }
  // The WAL is truncated at each audit, so it cannot witness pre-audit
  // ticks; the signed audit time bounds them (no id/commit-time issued
  // before an audit exceeds the last commit that audit covered).
  txns_->BumpTick(last_audit_time_);

  if (options_.compliance.enabled && crashed && !options_.read_only) {
    // Finish any interrupted vacuuming (§VIII).
    std::map<uint32_t, Btree*> trees;
    for (auto& [id, info] : tables_) trees[id] = info.tree.get();
    Vacuumer rechecker(
        wal_.get(), logger_.get(),
        [this] {
          return std::max(clock_->NowMicros(),
                          txns_->last_commit_time() + 1);
        },
        nullptr);
    auto r = rechecker.Recheck(logger_->log(), trees);
    if (!r.ok()) return r.status();
  }

  // The expiry relation is a regular audited table, created on first use.
  auto expiry_it = table_ids_.find(kExpiryTableName);
  if (expiry_it == table_ids_.end() && options_.read_only) {
    expiry_tree_id_ = 0;
  } else if (expiry_it == table_ids_.end()) {
    auto created = CreateTable(kExpiryTableName);
    if (!created.ok()) return created.status();
    expiry_tree_id_ = created.value();
  } else {
    expiry_tree_id_ = expiry_it->second;
  }
  expiry_ = std::make_unique<ExpiryPolicy>(tree(expiry_tree_id_));

  auto holds_it = table_ids_.find(kHoldsTableName);
  if (holds_it == table_ids_.end() && options_.read_only) {
    holds_tree_id_ = 0;
  } else if (holds_it == table_ids_.end()) {
    auto created = CreateTable(kHoldsTableName);
    if (!created.ok()) return created.status();
    holds_tree_id_ = created.value();
  } else {
    holds_tree_id_ = holds_it->second;
  }
  holds_ = std::make_unique<LitigationHolds>(tree(holds_tree_id_));

  vacuumer_ = std::make_unique<Vacuumer>(
      wal_.get(), options_.compliance.enabled ? logger_.get() : nullptr,
      [this] {
        return std::max(clock_->NowMicros(), txns_->last_commit_time() + 1);
      },
      expiry_.get(), holds_.get());

  if (options_.verify_on_open) {
    for (const auto& [id, info] : tables_) {
      auto check = CheckTreeIntegrity(cache_.get(), id, info.root);
      if (!check.ok()) return check.status();
      if (!check.value().ok()) {
        return Status::Tampered("tree '" + info.name +
                                "' fails integrity at open: " +
                                check.value().problems[0]);
      }
    }
  }

  last_regret_tick_ = clock_->NowMicros();
  if (options_.compliance.enabled && !options_.read_only) {
    // Tail names must not collide with tails from previous runs of this
    // epoch (they are only deleted at audit).
    for (const auto& name : worm_->ListPrefix("txtail_")) {
      if (name.size() >= 24) {
        uint64_t seq = std::strtoull(name.c_str() + 16, nullptr, 10);
        txtail_seq_ = std::max(txtail_seq_, seq + 1);
      }
    }
    CDB_RETURN_IF_ERROR(RotateTxTail());
    // Open is a full-flush point: attach-time page reads may have queued
    // READ_HASH records with the async shipper, and external auditors read
    // L straight off the WORM store the moment Open returns.
    CDB_RETURN_IF_ERROR(logger_->FlushLog());
  }
  return Status::OK();
}

Status CompliantDB::Close() {
  if (closed_) return Status::OK();
  telemetry_.reset();  // stop serving before the engine winds down
  if (options_.read_only) {
    closed_ = true;  // nothing to flush; never fabricate a CLEAN marker
    return Status::OK();
  }
  CDB_RETURN_IF_ERROR(txns_->StampPending(0));
  CDB_RETURN_IF_ERROR(cache_->FlushAll());
  CDB_RETURN_IF_ERROR(wal_->FlushAll());
  CDB_RETURN_IF_ERROR(logger_->FlushLog());
  std::ofstream marker(CleanMarkerPath(options_.dir));
  if (!marker.is_open()) return Status::IOError("clean marker");
  marker << "clean\n";
  marker.close();
  closed_ = true;
  return Status::OK();
}

// --- catalog ---------------------------------------------------------

Status CompliantDB::LoadCatalog() {
  Page* meta = nullptr;
  CDB_RETURN_IF_ERROR(cache_->FetchPage(kMetaPage, &meta));
  PageGuard guard(cache_.get(), kMetaPage, meta);
  if (meta->type() != PageType::kMeta || meta->slot_count() == 0) {
    return Status::OK();  // empty catalog
  }
  Slice rec = meta->RecordAt(0);
  Decoder dec(Slice(rec.data() + 2, rec.size() - 2));  // skip len prefix
  uint32_t count = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    TableInfo info;
    CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&info.name));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&info.tree_id));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&info.root));
    BtreeEnv env;
    env.cache = cache_.get();
    env.wal = wal_.get();
    env.observer = options_.compliance.enabled ? logger_.get() : nullptr;
    env.split_policy = split_policy_.get();
    env.migration = options_.tsb_enabled ? hist_.get() : nullptr;
    info.tree = std::make_unique<Btree>(env, info.tree_id, info.root);
    txns_->RegisterTree(info.tree_id, info.tree.get());
    next_tree_id_ = std::max(next_tree_id_, info.tree_id + 1);
    table_ids_[info.name] = info.tree_id;
    tables_[info.tree_id] = std::move(info);
  }
  return Status::OK();
}

Status CompliantDB::SaveCatalog() {
  std::string body;
  PutFixed32(&body, static_cast<uint32_t>(tables_.size()));
  for (const auto& [id, info] : tables_) {
    PutLengthPrefixed(&body, info.name);
    PutFixed32(&body, info.tree_id);
    PutFixed32(&body, info.root);
  }
  std::string record;
  PutFixed16(&record, static_cast<uint16_t>(2 + body.size()));
  record += body;

  Page* meta = nullptr;
  CDB_RETURN_IF_ERROR(cache_->FetchPage(kMetaPage, &meta));
  PageGuard guard(cache_.get(), kMetaPage, meta);
  if (meta->slot_count() > 0) CDB_RETURN_IF_ERROR(meta->EraseRecord(0));
  CDB_RETURN_IF_ERROR(meta->InsertRecord(0, record));
  // The catalog must survive a crash: log a redo image.
  WalRecord wal_rec;
  wal_rec.type = WalRecordType::kPageImage;
  wal_rec.pgno = kMetaPage;
  wal_rec.page_image.assign(meta->data(), kPageSize);
  meta->set_lsn(wal_->Append(&wal_rec));
  guard.MarkDirty();
  return Status::OK();
}

Result<uint32_t> CompliantDB::CreateTable(const std::string& name) {
  if (options_.read_only) return Status::NotSupported("read-only open");
  if (table_ids_.count(name) > 0) {
    return Status::InvalidArgument("table exists: " + name);
  }
  uint32_t tree_id = next_tree_id_++;
  auto root = Btree::Create(cache_.get(), tree_id, wal_.get());
  if (!root.ok()) return root.status();

  if (options_.compliance.enabled) {
    CDB_RETURN_IF_ERROR(logger_->OnNewTree(tree_id, root.value(), name));
  }

  TableInfo info;
  info.tree_id = tree_id;
  info.root = root.value();
  info.name = name;
  BtreeEnv env;
  env.cache = cache_.get();
  env.wal = wal_.get();
  env.observer = options_.compliance.enabled ? logger_.get() : nullptr;
  env.split_policy = split_policy_.get();
  env.migration = options_.tsb_enabled ? hist_.get() : nullptr;
  info.tree = std::make_unique<Btree>(env, tree_id, root.value());
  txns_->RegisterTree(tree_id, info.tree.get());
  table_ids_[name] = tree_id;
  tables_[tree_id] = std::move(info);

  CDB_RETURN_IF_ERROR(SaveCatalog());
  CDB_RETURN_IF_ERROR(wal_->FlushAll());
  return tree_id;
}

Result<uint32_t> CompliantDB::GetTable(const std::string& name) const {
  auto it = table_ids_.find(name);
  if (it == table_ids_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

std::vector<std::string> CompliantDB::ListTables() const {
  std::vector<std::string> names;
  for (const auto& [name, id] : table_ids_) names.push_back(name);
  return names;
}

// --- secondary indexes -------------------------------------------------

namespace {
std::string IndexTableName(const std::string& base, const std::string& name) {
  return "__idx__" + base + "__" + name;
}
std::string IndexEntryKey(Slice secondary, Slice primary) {
  std::string key(secondary.data(), secondary.size());
  key.push_back('\0');
  key.append(primary.data(), primary.size());
  return key;
}
}  // namespace

Result<uint32_t> CompliantDB::CreateIndex(uint32_t table,
                                          const std::string& name,
                                          IndexExtractor extractor) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::InvalidArgument("unknown table");
  auto created = CreateTable(IndexTableName(it->second.name, name));
  if (!created.ok()) return created.status();
  indexes_[table].push_back(IndexInfo{created.value(), std::move(extractor)});
  return created.value();
}

Result<uint32_t> CompliantDB::AttachIndex(uint32_t table,
                                          const std::string& name,
                                          IndexExtractor extractor) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::InvalidArgument("unknown table");
  auto existing = GetTable(IndexTableName(it->second.name, name));
  if (!existing.ok()) return existing.status();
  for (const auto& info : indexes_[table]) {
    if (info.index_tree == existing.value()) return existing.value();
  }
  indexes_[table].push_back(
      IndexInfo{existing.value(), std::move(extractor)});
  return existing.value();
}

Status CompliantDB::ScanIndex(
    uint32_t index_id, Slice secondary,
    const std::function<Status(Slice primary_key)>& fn) {
  if (tree(index_id) == nullptr) {
    return Status::InvalidArgument("unknown index");
  }
  std::string begin(secondary.data(), secondary.size());
  begin.push_back('\0');
  std::string end(secondary.data(), secondary.size());
  end.push_back('\x01');
  // Through ScanCurrent so execute-phase index writes staged in the slot
  // buffer are merged into the scan.
  return ScanCurrent(index_id, begin, end, [&](const TupleData& entry) {
    Slice primary(entry.key.data() + secondary.size() + 1,
                  entry.key.size() - secondary.size() - 1);
    return fn(primary);
  });
}

// --- transactions ----------------------------------------------------

uint64_t CompliantDB::ReserveWriteSlot() {
  if (pipeline_ != nullptr) return pipeline_->ReserveTicket();
  return serial_slot_seq_++;
}

uint64_t CompliantDB::ReserveWriteSlot(const SlotFootprint& footprint) {
  if (pipeline_ == nullptr) return serial_slot_seq_++;
  if (pipeline_->scheduler() == nullptr) return pipeline_->ReserveTicket();
  if (footprint.partitions.empty()) {
    return pipeline_->ReserveTicket(SlotScheduler::Admission::kExclusive, 0);
  }
  if (footprint.partitions.size() > 1) {
    // Cross-partition slots keep exclusive admission: the conflict table
    // tracks one partition per ticket, and multi-partition footprints are
    // rare enough (remote TPC-C transactions) that serializing them is
    // cheaper than a full interval check.
    return pipeline_->ReserveTicket(SlotScheduler::Admission::kFallback, 0);
  }
  return pipeline_->ReserveTicket(SlotScheduler::Admission::kConcurrent,
                                  footprint.partitions[0]);
}

Status CompliantDB::RunWriteSlot(uint64_t ticket,
                                 const std::function<Status()>& body) {
  return RunWriteSlot(ticket, body, std::function<void()>());
}

Status CompliantDB::RunWriteSlot(uint64_t ticket,
                                 const std::function<Status()>& body,
                                 const std::function<void()>& epilogue) {
  if (pipeline_ == nullptr) {
    (void)ticket;  // serial engine: the body already runs in slot order
    Status s = body();
    if (epilogue) epilogue();
    return s;
  }
  SlotScheduler* sched = pipeline_->scheduler();
  if (sched != nullptr && sched->IsConcurrent(ticket)) {
    // Execute phase: once every earlier undone slot is footprint-disjoint,
    // run the body against a staging buffer — reads see committed state
    // plus the slot's own writes, and nothing touches the engine yet.
    SlotWriteBuffer buf;
    pipeline_->BeginExecute(ticket, &buf);
    Status body_status = body();
    pipeline_->EndExecute();
    // Apply phase: the turnstile serializes the replay in ticket order,
    // so every L append lands exactly where a serial run would put it.
    pipeline_->OpenSlot(ticket, /*implicit=*/false);
    Status apply = ApplySlotBuffer(&buf);
    if (epilogue) epilogue();
    Status epoch = pipeline_->CloseSlot();
    if (!body_status.ok()) return body_status;
    if (!apply.ok()) return apply;
    return epoch;
  }
  pipeline_->OpenSlot(ticket, /*implicit=*/false);
  Status s = body();
  if (epilogue) epilogue();
  Status epoch = pipeline_->CloseSlot();
  return s.ok() ? epoch : s;
}

Status CompliantDB::ApplySlotBuffer(SlotWriteBuffer* buf) {
  // Replays the execute phase's op log through the real engine inside the
  // open slot. Begin/Commit/Abort take the full facade path (stamping,
  // regret ticks, commit spans); Put/Delete go straight to the engine —
  // index maintenance already ran at execute time and recorded its index
  // writes as explicit ops.
  Transaction* txn = nullptr;
  Status s;
  for (const auto& op : buf->ops()) {
    switch (op.kind) {
      case SlotWriteBuffer::OpKind::kBegin: {
        auto begun = Begin();
        if (begun.ok()) {
          txn = begun.value();
        } else {
          s = begun.status();
        }
        break;
      }
      case SlotWriteBuffer::OpKind::kPut:
        s = txns_->Put(txn, op.tree_id, op.key, op.value);
        break;
      case SlotWriteBuffer::OpKind::kDelete:
        s = txns_->Delete(txn, op.tree_id, op.key);
        break;
      case SlotWriteBuffer::OpKind::kCommit:
        s = Commit(txn);
        txn = nullptr;
        break;
      case SlotWriteBuffer::OpKind::kAbort:
        s = Abort(txn);
        txn = nullptr;
        break;
    }
    if (!s.ok()) break;
  }
  if (txn != nullptr) {
    // A body that failed mid-transaction left it open in the buffer; the
    // engine must not stay wedged with an active transaction.
    Status abort = Abort(txn);
    if (s.ok()) s = abort;
  }
  return s;
}

Result<Transaction*> CompliantDB::Begin() {
  if (options_.read_only) return Status::NotSupported("read-only open");
  // Scheduler execute phase: the transaction is staged in the slot's
  // write buffer (TransactionManager routes there); no turnstile, no
  // implicit slot — the replay at apply time opens the real one.
  if (pipeline_ != nullptr && pipeline_->ExecBuffer() != nullptr) {
    return txns_->Begin();
  }
  // Pipeline mode: a bare Begin outside any explicit slot opens its own
  // implicit one — the turnstile wait happens here, and Commit/Abort
  // close the slot (so a standalone transaction keeps durable-on-return
  // semantics through the epoch barrier).
  bool opened = false;
  if (pipeline_ != nullptr && !pipeline_->InSlot()) {
    pipeline_->OpenSlot(pipeline_->ReserveTicket(), /*implicit=*/true);
    opened = true;
  }
  auto txn = txns_->Begin();
  if (!txn.ok() && opened) (void)pipeline_->CloseSlot();
  return txn;
}

Status CompliantDB::Put(Transaction* txn, uint32_t table, Slice key,
                        Slice value) {
  auto idx = indexes_.find(table);
  if (idx == indexes_.end() || idx->second.empty()) {
    return txns_->Put(txn, table, key, value);
  }
  // Maintain every index inside the same transaction: write the base row
  // once, then per index retire the stale entry and add the new one.
  std::string old_value;
  Status got = txns_->Get(txn, table, key, &old_value);
  if (!got.ok() && !got.IsNotFound()) return got;
  CDB_RETURN_IF_ERROR(txns_->Put(txn, table, key, value));
  for (const auto& info : idx->second) {
    auto new_secondary = info.extractor(value);
    if (!new_secondary.ok()) return new_secondary.status();
    if (new_secondary.value().find('\0') != std::string::npos) {
      return Status::InvalidArgument("indexed key contains NUL");
    }
    if (got.ok()) {
      auto old_secondary = info.extractor(old_value);
      if (old_secondary.ok()) {
        if (old_secondary.value() == new_secondary.value()) {
          continue;  // the live entry already points here
        }
        CDB_RETURN_IF_ERROR(
            txns_->Delete(txn, info.index_tree,
                          IndexEntryKey(old_secondary.value(), key)));
      }
    }
    CDB_RETURN_IF_ERROR(txns_->Put(
        txn, info.index_tree, IndexEntryKey(new_secondary.value(), key),
        ""));
  }
  return Status::OK();
}

Status CompliantDB::Delete(Transaction* txn, uint32_t table, Slice key) {
  auto idx = indexes_.find(table);
  if (idx != indexes_.end()) {
    std::string old_value;
    Status got = txns_->Get(txn, table, key, &old_value);
    if (!got.ok()) return got;
    for (const auto& info : idx->second) {
      auto old_secondary = info.extractor(old_value);
      if (old_secondary.ok()) {
        CDB_RETURN_IF_ERROR(
            txns_->Delete(txn, info.index_tree,
                          IndexEntryKey(old_secondary.value(), key)));
      }
    }
  }
  return txns_->Delete(txn, table, key);
}

Status CompliantDB::Get(uint32_t table, Slice key, std::string* value) {
  return txns_->Get(nullptr, table, key, value);
}

Status CompliantDB::Commit(Transaction* txn) {
  // A deferred (execute-phase) transaction commits into its slot buffer;
  // the metrics and spans below fire at replay, when the commit is real.
  if (txn != nullptr && txn->slot_buffer() != nullptr) {
    return txn->slot_buffer()->Commit(txn);
  }
  // End-to-end commit latency as the client sees it: WAL flush, the
  // compliance barrier, background stamping, and any regret tick that
  // fires on this call — the tail the async shipper exists to shorten.
  obs::ScopedLatencyTimer timer(Dm().commit_us);
  // Covers the same window as the timer and decomposes it: the shipper
  // and WORM layers attribute their intervals to this thread's slot, and
  // the close emits the commit span plus its foreground/queued/drain/
  // worm_flush segments (docs/OBSERVABILITY.md, "Spans").
  obs::ScopedCommitSpan span(txn != nullptr ? txn->id() : 0);
  Status s = txns_->Commit(txn);
  if (s.ok()) {
    span.set_commit_time(txns_->last_commit_time());
    // The background timestamper keeps pace with commits (the regret tick
    // is its hard deadline; this is its steady-state progress). Small
    // per-commit slices instead of periodic bursts: total stamping work is
    // unchanged, but no single commit absorbs a 32-transaction backlog —
    // the bursts used to be the commit tail right below the regret ticks.
    if (txns_->pending_stamp_count() >= 4) s = txns_->StampPending(2);
    if (s.ok()) s = MaybeRegretTick();
    // Commit boundaries are the drain points for the dirty-threshold
    // checkpoint: they occur at the same logical position in every
    // execution schedule (serial or pipelined-apply), so the flush batch
    // lands at an identical offset in L regardless of thread count.
    if (s.ok()) s = cache_->CheckpointIfNeeded();
  }
  // An implicit slot closes with its commit: maintenance above stayed
  // inside the turnstile; only the epoch durability wait remains. Runs on
  // the error path too, or the turnstile would wedge.
  if (pipeline_ != nullptr && pipeline_->InImplicitSlot()) {
    Status epoch = pipeline_->CloseSlot();
    if (s.ok()) s = epoch;
  }
  return s;
}

Status CompliantDB::Abort(Transaction* txn) {
  if (txn != nullptr && txn->slot_buffer() != nullptr) {
    return txn->slot_buffer()->Abort(txn);
  }
  Status s = txns_->Abort(txn);
  if (s.ok()) s = MaybeRegretTick();
  if (s.ok()) s = cache_->CheckpointIfNeeded();
  if (pipeline_ != nullptr && pipeline_->InImplicitSlot()) {
    Status epoch = pipeline_->CloseSlot();
    if (s.ok()) s = epoch;
  }
  return s;
}

// --- temporal --------------------------------------------------------

Status CompliantDB::GetAsOf(uint32_t table, Slice key, uint64_t time,
                            std::string* value) {
  std::vector<TupleData> versions;
  CDB_RETURN_IF_ERROR(GetHistory(table, key, &versions));
  const TupleData* best = nullptr;
  uint64_t best_time = 0;
  for (const auto& v : versions) {
    uint64_t commit;
    if (v.stamped) {
      commit = v.start;
    } else {
      auto r = txns_->ResolveCommitTime(v.start);
      if (!r.ok()) continue;
      commit = r.value();
    }
    if (commit <= time && (best == nullptr || commit >= best_time)) {
      best = &v;
      best_time = commit;
    }
  }
  if (best == nullptr || best->eol) {
    return Status::NotFound("no version as of time");
  }
  *value = best->value;
  return Status::OK();
}

Status CompliantDB::GetHistory(uint32_t table, Slice key,
                               std::vector<TupleData>* out) {
  Btree* t = tree(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  out->clear();
  std::vector<TupleData> migrated = hist_->GetVersions(table, key);
  std::vector<TupleData> live;
  CDB_RETURN_IF_ERROR(t->GetVersions(key, &live));
  out->reserve(migrated.size() + live.size());
  for (auto& v : migrated) out->push_back(std::move(v));
  for (auto& v : live) out->push_back(std::move(v));
  std::stable_sort(out->begin(), out->end(),
                   [](const TupleData& a, const TupleData& b) {
                     return a.start < b.start;
                   });
  // A crash between the WORM write of a historical page and its MIGRATE
  // record can leave a version both in the orphan page and the live tree;
  // versions are unique by start time, so dedup here.
  out->erase(std::unique(out->begin(), out->end(),
                         [](const TupleData& a, const TupleData& b) {
                           return a.start == b.start;
                         }),
             out->end());
  return Status::OK();
}

Status CompliantDB::ScanCurrent(
    uint32_t table, Slice begin, Slice end,
    const std::function<Status(const TupleData&)>& fn) {
  Btree* t = tree(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  SlotWriteBuffer* buf =
      pipeline_ != nullptr ? pipeline_->ExecBuffer() : nullptr;
  if (buf == nullptr) return t->ScanRangeCurrent(begin, end, fn);
  // Scheduler execute phase: merge the slot's staged writes into the
  // committed scan in key order, so a body sees its own (buffered)
  // effects exactly as it would inside a real slot. A Busy callback
  // stops the merged scan the same way it stops the raw one.
  std::map<std::string, std::optional<std::string>> overlay;
  buf->CollectRange(table, begin, end, &overlay);
  if (overlay.empty()) return t->ScanRangeCurrent(begin, end, fn);
  auto it = overlay.begin();
  bool stopped = false;
  auto emit = [&](const TupleData& entry) -> Status {
    Status cb = fn(entry);
    if (cb.IsBusy()) stopped = true;
    return cb;
  };
  Status s = t->ScanRangeCurrent(
      begin, end, [&](const TupleData& entry) -> Status {
        // Slot-inserted keys that sort before this committed key.
        while (it != overlay.end() && it->first < entry.key) {
          if (it->second.has_value()) {
            TupleData synth;
            synth.key = it->first;
            synth.value = *it->second;
            Status cb = emit(synth);
            if (!cb.ok()) return cb;  // Busy stops the tree scan too
          }
          ++it;
        }
        if (it != overlay.end() && it->first == entry.key) {
          const std::optional<std::string> over = it->second;
          ++it;
          if (!over.has_value()) return Status::OK();  // deleted in slot
          TupleData shadowed = entry;
          shadowed.value = *over;
          return emit(shadowed);
        }
        return emit(entry);
      });
  if (!s.ok() || stopped) return s;
  // Slot-inserted keys past the last committed key in range.
  for (; it != overlay.end(); ++it) {
    if (!it->second.has_value()) continue;
    TupleData synth;
    synth.key = it->first;
    synth.value = *it->second;
    Status cb = fn(synth);
    if (cb.IsBusy()) return Status::OK();
    if (!cb.ok()) return cb;
  }
  return Status::OK();
}

// --- snapshot reads --------------------------------------------------

Result<SnapshotReader*> CompliantDB::BeginSnapshot() {
  return new SnapshotReader(this, txns_.get(), hist_.get(),
                            txns_->last_commit_time(), &open_snapshots_);
}

// --- retention & shredding -------------------------------------------

Status CompliantDB::SetRetention(uint32_t table, uint64_t retention_micros) {
  auto txn = Begin();
  if (!txn.ok()) return txn.status();
  Status s = Put(txn.value(), expiry_tree_id_, ExpiryPolicy::KeyFor(table),
                 ExpiryPolicy::EncodeRetention(retention_micros));
  if (!s.ok()) {
    (void)Abort(txn.value());
    return s;
  }
  return Commit(txn.value());
}

Result<VacuumReport> CompliantDB::Vacuum(uint32_t table) {
  if (options_.read_only) return Status::NotSupported("read-only open");
  Btree* t = tree(table);
  if (t == nullptr) return Status::InvalidArgument("unknown table");
  auto live = vacuumer_->Run(t, last_audit_time_);
  if (!live.ok()) return live.status();
  VacuumReport total = live.value();
  if (options_.tsb_enabled) {
    auto hist = vacuumer_->RunHistorical(t, hist_.get(), last_audit_time_);
    if (!hist.ok()) return hist.status();
    total.candidates += hist.value().candidates;
    total.shredded += hist.value().shredded;
    total.held += hist.value().held;
  }
  return total;
}

// --- litigation holds (§IX) --------------------------------------------

Status CompliantDB::PlaceHold(uint32_t table, Slice key_prefix) {
  auto txn = Begin();
  if (!txn.ok()) return txn.status();
  Status s = Put(txn.value(), holds_tree_id_,
                 LitigationHolds::KeyFor(table, key_prefix), "subpoena");
  if (!s.ok()) {
    (void)Abort(txn.value());
    return s;
  }
  CDB_RETURN_IF_ERROR(Commit(txn.value()));
  // Holds must be stamped promptly so hold checks resolve by commit time.
  // Stamping mutates tree pages, so in pipeline mode it needs its own
  // slot (Commit closed the implicit one above).
  return RunWriteSlot(ReserveWriteSlot(),
                      [this] { return txns_->StampPending(0); });
}

Status CompliantDB::ReleaseHold(uint32_t table, Slice key_prefix) {
  auto txn = Begin();
  if (!txn.ok()) return txn.status();
  Status s = Delete(txn.value(), holds_tree_id_,
                    LitigationHolds::KeyFor(table, key_prefix));
  if (!s.ok()) {
    (void)Abort(txn.value());
    return s;
  }
  CDB_RETURN_IF_ERROR(Commit(txn.value()));
  return RunWriteSlot(ReserveWriteSlot(),
                      [this] { return txns_->StampPending(0); });
}

Result<bool> CompliantDB::IsHeld(uint32_t table, Slice key) {
  if (holds_->tree() == nullptr) return false;
  return holds_->IsHeldNow(table, key);
}

// --- time & maintenance ----------------------------------------------

Status CompliantDB::AdvanceClock(uint64_t micros) {
  auto* sim = dynamic_cast<SimulatedClock*>(clock_);
  if (sim == nullptr) {
    return Status::NotSupported("AdvanceClock requires a SimulatedClock");
  }
  sim->AdvanceMicros(micros);
  return MaybeRegretTick();
}

Status CompliantDB::MaybeRegretTick() {
  uint64_t now = clock_->NowMicros();
  uint64_t regret = options_.compliance.regret_interval_micros;
  if (now - last_regret_tick_ < regret) return Status::OK();
  last_regret_tick_ = now;
  Dm().regret_ticks->Inc();
  obs::ScopedLatencyTimer timer(Dm().regret_tick_us);

  // Lazy stamping catches up, then the mark/sweep dirty-page forcing
  // guarantees every committed tuple's NEW_TUPLE reaches WORM within the
  // regret window (§IV-A).
  uint64_t writes_before = disk_->writes();
  CDB_RETURN_IF_ERROR(txns_->StampPending(0));
  CDB_RETURN_IF_ERROR(cache_->FlushMarkedAndRemark());
  CDB_RETURN_IF_ERROR(wal_->FlushAll());
  if (options_.compliance.enabled) {
    CDB_RETURN_IF_ERROR(logger_->Tick(now));
    CDB_RETURN_IF_ERROR(RotateTxTail());
    // The serial engine has no epoch leader, so the regret tick doubles
    // as its seal point: the chain keeps pace with the regret window.
    // (With a pipeline the leader already seals per durability barrier.)
    if (sealer_ != nullptr && pipeline_ == nullptr) {
      CDB_RETURN_IF_ERROR(SealEpochNow());
    }
  }
  obs::TraceRing::Global().Emit(obs::TraceEventType::kRegretTick,
                                disk_->writes() - writes_before);
  return Status::OK();
}

Status CompliantDB::RotateTxTail() {
  return wal_->StartTail(worm_.get(), TxTailFileName(epoch_, txtail_seq_++),
                         0);
}

Status CompliantDB::FlushAll() {
  CDB_RETURN_IF_ERROR(txns_->StampPending(0));
  CDB_RETURN_IF_ERROR(cache_->FlushAll());
  CDB_RETURN_IF_ERROR(wal_->FlushAll());
  CDB_RETURN_IF_ERROR(wal_->FlushTailMirror());
  // Drain the compliance ring last: quiescing (Audit) must leave nothing
  // in flight.
  return logger_->FlushLog();
}

// --- statistics ----------------------------------------------------------

Result<CompliantDB::DbStats> CompliantDB::Stats() {
  DbStats stats;
  stats.epoch = epoch_;
  stats.cache_hits = cache_->hits();
  stats.cache_misses = cache_->misses();
  stats.cache_evictions = cache_->evictions();
  stats.disk_reads = disk_->reads();
  stats.disk_writes = disk_->writes();
  stats.wal_bytes = wal_->durable_lsn() - wal_->base_lsn();
  if (options_.compliance.enabled && logger_->log() != nullptr) {
    stats.compliance_log_bytes = logger_->log()->size();
    stats.compliance_log_records = logger_->log()->record_count();
  }
  stats.historical_pages = hist_->page_count();
  stats.historical_tuples = hist_->tuple_count();
  stats.worm_violations = worm_->violation_count();
  for (const auto& [id, info] : tables_) {
    TableStats ts;
    ts.name = info.name;
    ts.tree_id = id;
    auto pages = info.tree->CountPages();
    if (pages.ok()) {
      ts.leaf_pages = pages.value().leaf_pages;
      ts.internal_pages = pages.value().internal_pages;
    }
    CDB_RETURN_IF_ERROR(info.tree->ScanAll([&](PageId, const TupleData&) {
      ++ts.versions;
      return Status::OK();
    }));
    stats.tables.push_back(std::move(ts));
  }
  return stats;
}

std::string CompliantDB::DumpMetricsJson() const {
  return obs::MetricsRegistry::Global().ToJson();
}

std::string CompliantDB::DumpMetricsPrometheus() const {
  return obs::MetricsRegistry::Global().ToPrometheusText();
}

// --- audit -------------------------------------------------------------

RetentionResolver CompliantDB::MakeRetentionResolver() {
  ExpiryPolicy* expiry = expiry_.get();
  return [expiry](uint32_t tree_id, uint64_t at_time) {
    return expiry->At(tree_id, at_time);
  };
}

Result<AuditReport> CompliantDB::Audit() {
  uint32_t threads = options_.audit_threads;
  // CI (and operators) force the parallel path everywhere via env.
  if (const char* env = std::getenv("COMPLYDB_AUDIT_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') threads = static_cast<uint32_t>(v);
  }
  return Audit(threads);
}

Result<AuditReport> CompliantDB::Audit(uint32_t num_threads) {
  AuditOptions overrides;
  overrides.num_threads = num_threads;
  return AuditInternal(overrides);
}

Result<AuditReport> CompliantDB::Audit(const AuditOptions& overrides) {
  return AuditInternal(overrides);
}

Result<AuditReport> CompliantDB::AuditInternal(const AuditOptions& overrides) {
  if (!options_.compliance.enabled) {
    return Status::NotSupported("compliance logging is disabled");
  }
  if (options_.read_only) {
    return Status::NotSupported(
        "read-only open: use the standalone cdb_audit tool");
  }
  auto quiescent = [this]() -> Status {
    const int snapshots = open_snapshots_.load(std::memory_order_acquire);
    uint64_t writers = txns_->HasActiveTxn() ? 1 : 0;
    if (pipeline_ != nullptr) {
      writers = std::max(writers, pipeline_->in_flight());
    }
    if (snapshots > 0 || writers > 0) {
      return Status::Busy("audit requires a quiescent database (" +
                          std::to_string(snapshots) + " snapshots open, " +
                          std::to_string(writers) + " writers in flight)");
    }
    return Status::OK();
  };
  Status quiet = quiescent();
  if (!quiet.ok() && overrides.wait_for_quiesce) {
    // Poll on wall time, not the database clock: simulated clocks only
    // advance on demand, and the snapshots we wait on are wall-clock
    // events (another thread releasing its handle).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(overrides.quiesce_deadline_micros);
    while (!quiet.ok() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      quiet = quiescent();
    }
  }
  if (!quiet.ok()) return quiet;
  // Quiesce: lazy updates reach disk, everything flushed.
  CDB_RETURN_IF_ERROR(FlushAll());

  AuditOptions opts;
  opts.auditor_key = options_.auditor_key;
  opts.verify_read_hashes =
      overrides.verify_read_hashes && options_.compliance.hash_on_read;
  opts.identity_hash_check = overrides.identity_hash_check;
  opts.sort_merge_check = overrides.sort_merge_check;
  opts.gap_slack = overrides.gap_slack;
  opts.regret_interval_micros = options_.compliance.regret_interval_micros;
  opts.wal_path = wal_path();
  opts.retention_resolver = MakeRetentionResolver();
  LitigationHolds* holds = holds_.get();
  opts.hold_resolver = [holds](uint32_t tree_id, const std::string& key,
                               uint64_t at_time) {
    return holds->IsHeld(tree_id, key, at_time);
  };
  opts.num_threads = overrides.num_threads;

  Auditor auditor(opts, worm_.get(), disk_.get());
  auto report = auditor.Audit(epoch_, /*write_snapshot=*/true);
  if (!report.ok()) return report.status();

  if (report.value().ok()) {
    last_audit_time_ = txns_->last_commit_time();
    // Whole-file WORM deletion of fully-shredded historical pages
    // (§VIII): "then the tuple will truly cease to exist."
    for (const auto& name : report.value().shredded_hist_files) {
      if (!worm_->Exists(name)) continue;
      CDB_RETURN_IF_ERROR(worm_->ReleaseRetention(name));
      CDB_RETURN_IF_ERROR(worm_->Delete(name));
    }
    CDB_RETURN_IF_ERROR(auditor.ReleaseOldFiles(epoch_));
    // The audit is a durable checkpoint: everything it verified is on
    // disk, so pre-audit WAL records can never be needed for redo again.
    CDB_RETURN_IF_ERROR(wal_->Truncate());
    ++epoch_;
    CDB_RETURN_IF_ERROR(logger_->StartFreshEpoch(epoch_));
    txtail_seq_ = 0;
    CDB_RETURN_IF_ERROR(RotateTxTail());
    // The chain and certification cursor restart with the fresh epoch:
    // the full audit just re-established trust from first principles, so
    // the old chain (released above) has nothing left to certify.
    std::lock_guard<std::mutex> lock(cert_mu_);
    cursor_.reset();
    last_incremental_us_.store(0, std::memory_order_relaxed);
    if (sealer_ != nullptr) {
      CDB_RETURN_IF_ERROR(sealer_->Attach(epoch_));
    }
  }
  return report;
}

// --- incremental certification ----------------------------------------

namespace {
obs::Gauge* BacklogGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("audit.epoch.backlog");
  return g;
}
}  // namespace

Status CompliantDB::SealEpochNow() {
  if (!options_.compliance.enabled || options_.read_only) {
    return Status::NotSupported("epoch sealing requires live compliance");
  }
  if (sealer_ == nullptr) {
    return Status::NotSupported("epoch sealing is disabled");
  }
  const uint64_t size = logger_->LogSize();
  if (size == 0) return Status::OK();
  // Seal only durable bytes: a sealed range that a crash could shorten
  // would read back as tampering.
  CDB_RETURN_IF_ERROR(logger_->WaitCommitDurable(size));
  return sealer_->SealThrough(size);
}

Status CompliantDB::EnsureCursorLocked() {
  if (cursor_ != nullptr) return Status::OK();
  AuditCursor::Options copts;
  copts.auditor_key = options_.auditor_key;
  copts.verify_read_hashes = options_.compliance.hash_on_read;
  auto cursor = std::make_unique<AuditCursor>(copts, worm_.get());
  CDB_RETURN_IF_ERROR(cursor->Attach(epoch_));
  cursor_ = std::move(cursor);
  return Status::OK();
}

Result<IncrementalAuditReport> CompliantDB::AuditIncremental() {
  uint32_t threads = options_.audit_threads;
  if (const char* env = std::getenv("COMPLYDB_AUDIT_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') threads = static_cast<uint32_t>(v);
  }
  return AuditIncremental(threads);
}

Result<IncrementalAuditReport> CompliantDB::AuditIncremental(
    uint32_t num_threads) {
  if (!options_.compliance.enabled) {
    return Status::NotSupported("compliance logging is disabled");
  }
  if (options_.read_only) {
    return Status::NotSupported(
        "read-only open: use the standalone cdb_audit tool");
  }
  if (sealer_ == nullptr) {
    return Status::NotSupported("epoch sealing is disabled");
  }
  // No quiescence: sealing the tail and certifying the delta both run
  // against immutable L prefixes while readers and writers continue.
  CDB_RETURN_IF_ERROR(SealEpochNow());

  std::lock_guard<std::mutex> lock(cert_mu_);
  CDB_RETURN_IF_ERROR(EnsureCursorLocked());
  auto chain = ReadEpochChain(worm_.get(), epoch_);
  if (!chain.ok()) {
    if (!chain.status().IsTampered() && !chain.status().IsCorruption()) {
      return chain.status();
    }
    // A chain that no longer verifies is a finding, not an error.
    IncrementalAuditReport rep;
    rep.problems.push_back(chain.status().ToString());
    rep.all_problems = cursor_->problems();
    rep.all_problems.push_back(chain.status().ToString());
    rep.certified_seq = cursor_->certified_seq();
    rep.certified_offset = cursor_->certified_offset();
    rep.chain_root = cursor_->certified_root();
    return rep;
  }
  auto rep = [&]() -> Result<IncrementalAuditReport> {
    obs::ScopedSpan span(obs::SpanKind::kAuditIncremental, epoch_,
                         chain.value().size() - cursor_->certified_seq());
    return cursor_->CertifyThrough(chain.value(), num_threads);
  }();
  if (!rep.ok()) return rep.status();
  if (rep.value().ok()) {
    CDB_RETURN_IF_ERROR(cursor_->PersistCertification());
  }
  last_incremental_us_.store(
      static_cast<uint64_t>(rep.value().seconds * 1e6),
      std::memory_order_relaxed);
  BacklogGauge()->Set(static_cast<int64_t>(sealer_->sealed_seq() -
                                           cursor_->certified_seq()));
  return rep;
}

Result<IncrementalAuditReport> CompliantDB::AuditFullReplay(
    uint32_t num_threads) {
  if (!options_.compliance.enabled) {
    return Status::NotSupported("compliance logging is disabled");
  }
  if (options_.read_only) {
    return Status::NotSupported(
        "read-only open: use the standalone cdb_audit tool");
  }
  if (sealer_ == nullptr) {
    return Status::NotSupported("epoch sealing is disabled");
  }
  CDB_RETURN_IF_ERROR(SealEpochNow());
  AuditCursor::Options copts;
  copts.auditor_key = options_.auditor_key;
  copts.verify_read_hashes = options_.compliance.hash_on_read;
  AuditCursor cursor(copts, worm_.get());
  CDB_RETURN_IF_ERROR(cursor.AttachFresh(epoch_));
  auto chain = ReadEpochChain(worm_.get(), epoch_);
  if (!chain.ok()) {
    if (!chain.status().IsTampered() && !chain.status().IsCorruption()) {
      return chain.status();
    }
    IncrementalAuditReport rep;
    rep.problems.push_back(chain.status().ToString());
    rep.all_problems = rep.problems;
    return rep;
  }
  return cursor.CertifyThrough(chain.value(), num_threads);
}

uint64_t CompliantDB::CertifiedEpoch() {
  std::lock_guard<std::mutex> lock(cert_mu_);
  if (cursor_ == nullptr && !EnsureCursorLocked().ok()) return 0;
  return cursor_->certified_seq();
}

Result<CompliantDB::CertificationStatus> CompliantDB::Certification() {
  CertificationStatus cs;
  cs.enabled = options_.compliance.enabled && !options_.read_only &&
               sealer_ != nullptr;
  cs.audit_epoch = epoch_;
  if (!cs.enabled) return cs;
  cs.log_size = logger_->LogSize();
  cs.sealed_seq = sealer_->sealed_seq();
  cs.sealed_offset = sealer_->sealed_offset();
  std::lock_guard<std::mutex> lock(cert_mu_);
  CDB_RETURN_IF_ERROR(EnsureCursorLocked());
  cs.certified_seq = cursor_->certified_seq();
  cs.certified_offset = cursor_->certified_offset();
  cs.backlog_epochs = cs.sealed_seq - cs.certified_seq;
  cs.backlog_bytes =
      cs.log_size > cs.certified_offset ? cs.log_size - cs.certified_offset
                                        : 0;
  cs.last_incremental_us = last_incremental_us_.load(std::memory_order_relaxed);
  cs.chain_root = cursor_->certified_root();
  return cs;
}

Result<InclusionProof> CompliantDB::ProveInclusion(uint32_t table, Slice key,
                                                   Slice value,
                                                   uint64_t commit_time) {
  if (!options_.compliance.enabled) {
    return Status::NotSupported("compliance logging is disabled");
  }
  std::lock_guard<std::mutex> lock(cert_mu_);
  CDB_RETURN_IF_ERROR(EnsureCursorLocked());
  return cursor_->ProveInclusion(table, key, value, commit_time);
}

}  // namespace complydb
