#ifndef COMPLYDB_DB_SNAPSHOT_READER_H_
#define COMPLYDB_DB_SNAPSHOT_READER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "audit/audit_cursor.h"
#include "btree/tuple.h"
#include "common/status.h"
#include "tsb/tsb_policy.h"
#include "txn/transaction_manager.h"

namespace complydb {

class CompliantDB;

/// A read-only view of the database pinned at a commit timestamp.
///
/// In a transaction-time store, committed versions are immutable: the
/// writer only appends new versions, upgrades lazy stamps, or migrates
/// superseded versions to WORM — it never changes what was visible at any
/// past commit time. A reader pinned at the last commit time therefore
/// needs no 2PL: page latches (crabbed shared descents in the btree) give
/// physical consistency, and version visibility at the pinned time gives
/// logical consistency. Versions from the writer's in-flight transaction
/// are unstamped with a start id that resolves to no committed txn at or
/// below the snapshot, so they are naturally invisible.
///
/// Handles are created by CompliantDB::BeginSnapshot() and freed with
/// `delete`; every method is safe to call from any thread, and multiple
/// handles on multiple threads run concurrently with the single writer.
class SnapshotReader {
 public:
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// The commit time this view is pinned at.
  uint64_t snapshot_time() const { return snap_; }

  /// Latest value of `key` visible at the snapshot time.
  Status Get(uint32_t table, Slice key, std::string* value) const;

  /// Value of `key` as of min(time, snapshot time) — the snapshot bounds
  /// how far forward a temporal read inside it can see.
  Status GetAsOf(uint32_t table, Slice key, uint64_t time,
                 std::string* value) const;

  /// Latest visible value per key over [begin, end) at the snapshot time
  /// (end empty = unbounded). `fn` may return Busy to stop early.
  Status ScanCurrent(uint32_t table, Slice begin, Slice end,
                     const std::function<Status(const TupleData&)>& fn) const;

  /// Get that does not trust the engine it is reading: alongside the
  /// value, it demands a Merkle inclusion proof that this exact version
  /// (key, value, commit time) is committed under the last certified
  /// chain root. Verify client-side with VerifyInclusionProof against an
  /// independently remembered root. NotFound if the key has no visible
  /// version, or if its visible version is newer than the certified
  /// prefix (run AuditIncremental and retry).
  Status GetWithProof(uint32_t table, Slice key, std::string* value,
                      uint64_t* commit_time, InclusionProof* proof) const;

 private:
  friend class CompliantDB;

  SnapshotReader(CompliantDB* db, TransactionManager* txns,
                 HistoricalStore* hist, uint64_t snap,
                 std::atomic<int>* open_count);

  /// True if `v` committed at or before `limit`; outputs its commit time.
  bool ResolveVisible(const TupleData& v, uint64_t limit,
                      uint64_t* commit) const;

  CompliantDB* db_;
  TransactionManager* txns_;
  HistoricalStore* hist_;
  uint64_t snap_;
  std::atomic<int>* open_count_;
};

}  // namespace complydb

#endif  // COMPLYDB_DB_SNAPSHOT_READER_H_
