#include "db/snapshot_reader.h"

#include <vector>

#include "db/compliant_db.h"
#include "obs/metrics.h"

namespace complydb {

namespace {
struct SnapMetrics {
  obs::Counter* begins;
  obs::Counter* reads;
  obs::Gauge* open_snapshots;
  obs::Histogram* get_us;
  obs::Histogram* scan_us;
  SnapMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    begins = reg.GetCounter("db.snapshot.begins");
    reads = reg.GetCounter("db.snapshot.reads");
    open_snapshots = reg.GetGauge("db.open_snapshots");
    get_us = reg.GetHistogram("db.snapshot.get_us");
    scan_us = reg.GetHistogram("db.snapshot.scan_us");
  }
};
SnapMetrics& Sm() {
  static SnapMetrics m;
  return m;
}
}  // namespace

SnapshotReader::SnapshotReader(CompliantDB* db, TransactionManager* txns,
                               HistoricalStore* hist, uint64_t snap,
                               std::atomic<int>* open_count)
    : db_(db), txns_(txns), hist_(hist), snap_(snap),
      open_count_(open_count) {
  open_count_->fetch_add(1, std::memory_order_acq_rel);
  Sm().begins->Inc();
  Sm().open_snapshots->Add(1);
}

SnapshotReader::~SnapshotReader() {
  open_count_->fetch_sub(1, std::memory_order_acq_rel);
  Sm().open_snapshots->Add(-1);
}

bool SnapshotReader::ResolveVisible(const TupleData& v, uint64_t limit,
                                    uint64_t* commit) const {
  if (v.stamped) {
    *commit = v.start;
  } else {
    // Unstamped: start is a txn id. Committed ids resolve to a commit
    // time (the entry is published before last_commit_time advances);
    // the writer's in-flight txn resolves to nothing and stays invisible.
    auto r = txns_->ResolveCommitTime(v.start);
    if (!r.ok()) return false;
    *commit = r.value();
  }
  return *commit <= limit;
}

Status SnapshotReader::Get(uint32_t table, Slice key,
                           std::string* value) const {
  return GetAsOf(table, key, snap_, value);
}

Status SnapshotReader::GetAsOf(uint32_t table, Slice key, uint64_t time,
                               std::string* value) const {
  obs::ScopedLatencyTimer timer(Sm().get_us);
  uint64_t limit = std::min(time, snap_);
  Btree* tree = txns_->GetTree(table);
  if (tree == nullptr) return Status::InvalidArgument("unknown table");
  Sm().reads->Inc();
  // Live tree first, then WORM-migrated history: a time split can move
  // the visible version between the two mid-read, but it cannot remove it
  // from both, and a double sighting picks the same version either way
  // (versions are unique by start).
  std::vector<TupleData> versions;
  CDB_RETURN_IF_ERROR(tree->GetVersions(key, &versions));
  if (hist_ != nullptr) {
    for (auto& h : hist_->GetVersions(table, key)) {
      versions.push_back(std::move(h));
    }
  }
  const TupleData* best = nullptr;
  uint64_t best_time = 0;
  for (const auto& v : versions) {
    uint64_t commit;
    if (!ResolveVisible(v, limit, &commit)) continue;
    if (best == nullptr || commit >= best_time) {
      best = &v;
      best_time = commit;
    }
  }
  if (best == nullptr || best->eol) {
    return Status::NotFound("no version as of time");
  }
  *value = best->value;
  return Status::OK();
}

Status SnapshotReader::GetWithProof(uint32_t table, Slice key,
                                    std::string* value, uint64_t* commit_time,
                                    InclusionProof* proof) const {
  obs::ScopedLatencyTimer timer(Sm().get_us);
  Btree* tree = txns_->GetTree(table);
  if (tree == nullptr) return Status::InvalidArgument("unknown table");
  Sm().reads->Inc();
  // Same version pick as GetAsOf, but the winning commit time is kept:
  // the proof binds (key, value, commit time) as one unit.
  std::vector<TupleData> versions;
  CDB_RETURN_IF_ERROR(tree->GetVersions(key, &versions));
  if (hist_ != nullptr) {
    for (auto& h : hist_->GetVersions(table, key)) {
      versions.push_back(std::move(h));
    }
  }
  const TupleData* best = nullptr;
  uint64_t best_time = 0;
  for (const auto& v : versions) {
    uint64_t commit;
    if (!ResolveVisible(v, snap_, &commit)) continue;
    if (best == nullptr || commit >= best_time) {
      best = &v;
      best_time = commit;
    }
  }
  if (best == nullptr || best->eol) {
    return Status::NotFound("no version as of time");
  }
  auto proven = db_->ProveInclusion(table, best->key, best->value, best_time);
  if (!proven.ok()) return proven.status();
  *value = best->value;
  *commit_time = best_time;
  *proof = proven.TakeValue();
  return Status::OK();
}

Status SnapshotReader::ScanCurrent(
    uint32_t table, Slice begin, Slice end,
    const std::function<Status(const TupleData&)>& fn) const {
  obs::ScopedLatencyTimer timer(Sm().scan_us);
  Btree* tree = txns_->GetTree(table);
  if (tree == nullptr) return Status::InvalidArgument("unknown table");
  Sm().reads->Inc();

  // The live-tree scan drives key discovery (a time split always leaves
  // each key's newest version live, so no key vanishes entirely); per key
  // the historical store is merged in before picking the visible version.
  std::string cur_key;
  bool has_key = false;
  bool stop = false;
  std::vector<TupleData> group;

  auto flush = [&]() -> Status {
    if (!has_key) return Status::OK();
    has_key = false;
    if (hist_ != nullptr) {
      for (auto& h : hist_->GetVersions(table, cur_key)) {
        group.push_back(std::move(h));
      }
    }
    const TupleData* best = nullptr;
    uint64_t best_time = 0;
    for (const auto& v : group) {
      uint64_t commit;
      if (!ResolveVisible(v, snap_, &commit)) continue;
      if (best == nullptr || commit >= best_time) {
        best = &v;
        best_time = commit;
      }
    }
    Status s = Status::OK();
    if (best != nullptr && !best->eol) {
      s = fn(*best);
      if (s.IsBusy()) {  // early-stop sentinel, as in ScanRangeCurrent
        stop = true;
        s = Status::OK();
      }
    }
    group.clear();
    return s;
  };

  CDB_RETURN_IF_ERROR(
      tree->ScanVersionsInRange(begin, end, [&](const TupleData& t) -> Status {
        if (has_key && t.key != cur_key) {
          CDB_RETURN_IF_ERROR(flush());
          if (stop) return Status::Busy("stop");
        }
        cur_key = t.key;
        has_key = true;
        group.push_back(t);
        return Status::OK();
      }));
  if (stop) return Status::OK();
  return flush();
}

}  // namespace complydb
