#ifndef COMPLYDB_DB_COMPLIANT_DB_H_
#define COMPLYDB_DB_COMPLIANT_DB_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "audit/audit_cursor.h"
#include "audit/auditor.h"
#include "audit/epoch_chain.h"
#include "btree/btree.h"
#include "common/clock.h"
#include "compliance/logger.h"
#include "shred/expiry.h"
#include "shred/holds.h"
#include "shred/vacuum.h"
#include "storage/buffer_cache.h"
#include "storage/disk_manager.h"
#include "tsb/tsb_policy.h"
#include "txn/epoch_pipeline.h"
#include "txn/recovery.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"
#include "wal/wal_io_hook.h"
#include "obs/telemetry_server.h"
#include "worm/worm_store.h"

namespace complydb {

class SnapshotReader;

/// Top-level configuration.
struct DbOptions {
  /// Directory holding the database file, transaction log, and the WORM
  /// store emulation (subdirectory `worm/`).
  std::string dir;

  /// Buffer cache capacity in 4 KB pages (the paper's 256 MB / 512 MB /
  /// 32 MB knobs, scaled).
  size_t cache_pages = 256;

  /// Buffer-cache shard count (rounded down to a power of two). Each shard
  /// has its own hash table, free list, LRU, and mutex, so concurrent
  /// snapshot readers miss-and-load in parallel. 0 = auto: the largest
  /// power of two <= min(16, cache_pages / 8), at least 1. 1 reproduces
  /// the single-threaded cache's exact global LRU order.
  size_t cache_shards = 0;

  /// Compliance machinery (§IV–§V). compliance.enabled=false gives the
  /// "native Berkeley DB" baseline of Fig. 3.
  ComplianceOptions compliance;

  /// Time-split B+-trees + WORM migration (§VI).
  bool tsb_enabled = false;
  double tsb_split_threshold = 0.5;

  /// Time source. If null, a SystemClock is owned internally; tests and
  /// benchmarks pass a SimulatedClock so regret intervals elapse on
  /// demand.
  Clock* clock = nullptr;

  /// Key whose holder can sign/verify snapshots (the auditor).
  std::string auditor_key = "auditor-secret-key";

  /// Simulated storage-server latency per page I/O (0 = none). The
  /// benchmark harness uses this to model the paper's NFS filer.
  uint64_t io_latency_micros = 0;

  /// Simulated latency for page *reads* only, overriding io_latency_micros
  /// on the read side when non-zero. The write-scaling benchmark uses an
  /// asymmetric profile (priced reads, free writes) to isolate how much
  /// execute-phase read latency the disjoint-slot scheduler overlaps.
  uint64_t io_read_latency_micros = 0;

  /// Simulated WORM-server latency per durable flush (0 = none). The
  /// paper's compliance store is a network-attached filer too; each
  /// fflush of L models one round trip to it. The commit-path benchmark
  /// sets this to expose the round trips group commit amortizes away.
  uint64_t worm_flush_latency_micros = 0;

  /// Forensic inspection mode: no recovery, no compliance appends, every
  /// mutating API refused. The view can be stale after a crash (recovery
  /// has not run); use tools/cdb_audit for the authoritative verdict.
  bool read_only = false;

  /// Run the §IV-C structural integrity check over every tree at open
  /// (after recovery) and refuse to open a corrupted database. Cheaper
  /// than a full audit; catches file-editor damage early.
  bool verify_on_open = false;

  /// TCP port for the embedded telemetry endpoint (loopback only;
  /// /metrics, /metrics.json, /trace, /healthz — see
  /// docs/OBSERVABILITY.md). 0 = disabled. The COMPLYDB_TELEMETRY_PORT
  /// environment variable, when set, overrides this; a bind failure is
  /// logged and the database opens without the endpoint (telemetry never
  /// blocks the engine).
  uint16_t telemetry_port = 0;

  /// Worker threads for Audit()'s replay/final-state/index-check phases.
  /// 1 = serial reference path; 0 = hardware_concurrency. The
  /// COMPLYDB_AUDIT_THREADS environment variable, when set, overrides
  /// this (CI uses it to exercise the parallel path everywhere). The
  /// report is byte-identical at any thread count.
  uint32_t audit_threads = 1;

  /// Minimum new L bytes before the commit pipeline's epoch leader seals
  /// another audit epoch (see DESIGN.md, "Incremental certification").
  /// 0 = seal on every durability barrier — the finest audit granularity
  /// and the default; raise it to coalesce tiny commit epochs into fewer,
  /// larger sealed epochs when Merkle hashing on the leader path matters.
  uint64_t seal_min_bytes = 0;

  /// Writer threads the epoch-based commit pipeline admits (see
  /// DESIGN.md, "The epoch/sequencer commit pipeline"). 1 = the serial
  /// engine, no pipeline. > 1 creates the ticket turnstile: workers
  /// reserve slots via ReserveWriteSlot/RunWriteSlot (or get an implicit
  /// slot per bare Begin), commits are sequenced in ticket order, and
  /// durability is one epoch barrier per slot — the compliance log stays
  /// byte-identical at any thread count. Forces compliance.async_shipping
  /// when compliance is enabled. The COMPLYDB_WRITE_THREADS environment
  /// variable, when set to a positive integer, overrides this.
  uint32_t write_threads = 1;

  /// Disjoint-slot scheduling (DESIGN.md, "Disjoint-slot scheduling").
  /// When true and write_threads > 1, slots that declare a
  /// single-partition footprint at ReserveWriteSlot execute concurrently
  /// against per-slot staging buffers and are replayed through the engine
  /// in ticket order; undeclared or multi-partition slots keep exclusive
  /// turnstile admission. Forced off when compliance.hash_on_read is set
  /// (execute-phase reads must not append READ_HASH records at
  /// thread-dependent times). The COMPLYDB_SLOT_SCHEDULER environment
  /// variable ("0"/"1"), when set, overrides this.
  bool slot_scheduler = true;
};

/// The compliant DBMS facade: a transaction-time key-value store over
/// B+-trees with WAL recovery, a compliance log on WORM, regret-interval
/// forcing, audits, time-split migration, and auditable shredding.
///
/// Lifecycle: Open -> transactions -> (Close for a clean shutdown, or
/// destroy the object to simulate a crash — committed work is recovered
/// from the WAL on the next Open, and the compliance machinery follows
/// §IV-B).
class CompliantDB {
 public:
  static Result<CompliantDB*> Open(const DbOptions& options);
  ~CompliantDB();

  CompliantDB(const CompliantDB&) = delete;
  CompliantDB& operator=(const CompliantDB&) = delete;

  /// Flushes everything and writes the clean-shutdown marker.
  Status Close();

  // --- schema ---
  Result<uint32_t> CreateTable(const std::string& name);
  Result<uint32_t> GetTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

  // --- secondary indexes ---
  /// Derives the indexed key from a row's value bytes. The derived key
  /// must not contain a 0x00 byte (it is the index-entry separator).
  using IndexExtractor = std::function<Result<std::string>(Slice value)>;

  /// Creates a secondary index on `table` and registers its extractor.
  /// Index entries are ordinary transaction-time tuples in their own tree
  /// — maintained inside the same transaction as the base write, so they
  /// are audited, versioned, and tamper-evident like any relation (the
  /// paper's indexes get the same §IV-C treatment).
  Result<uint32_t> CreateIndex(uint32_t table, const std::string& name,
                               IndexExtractor extractor);

  /// Re-registers the extractor for an existing index after reopen
  /// (extractors are code and cannot be persisted).
  Result<uint32_t> AttachIndex(uint32_t table, const std::string& name,
                               IndexExtractor extractor);

  /// Equality lookup: primary keys whose current row derives `secondary`,
  /// in primary-key order.
  Status ScanIndex(uint32_t index_id, Slice secondary,
                   const std::function<Status(Slice primary_key)>& fn);

  // --- multi-writer commit slots (write_threads > 1) ---
  /// Reserves the next commit-pipeline ticket. Tickets are admitted in
  /// reservation order; reserve under the same lock that decides the
  /// slot's content and the schedule is deterministic. With no pipeline
  /// this is a plain counter (RunWriteSlot runs the body inline).
  /// Undeclared footprint: exclusive turnstile admission.
  uint64_t ReserveWriteSlot();

  /// Reserves a ticket with a declared footprint. With the disjoint-slot
  /// scheduler enabled, a single-partition footprint makes the slot
  /// eligible for concurrent execution; multi-partition declarations fall
  /// back to exclusive admission (txn.scheduler.footprint_fallbacks).
  uint64_t ReserveWriteSlot(const SlotFootprint& footprint);

  /// Runs `body` inside commit slot `ticket`: blocks until the turnstile
  /// admits the ticket, runs the body (any number of Begin/Commit cycles
  /// plus reads), then releases the turnstile and waits for the epoch
  /// durability barrier covering the slot's commits. Returns the body's
  /// status, or the barrier's if the body succeeded.
  ///
  /// For a scheduler-admitted concurrent slot the body instead runs
  /// immediately against a per-slot staging buffer (reads see committed
  /// state plus the slot's own writes), and the buffered ops are replayed
  /// through the engine once the turnstile admits the ticket — observable
  /// effects are identical, but disjoint bodies overlap.
  ///
  /// `epilogue`, when provided, runs inside the slot after the body (or
  /// after the replay), i.e. serially in ticket order — drivers use it to
  /// advance the simulated clock deterministically.
  Status RunWriteSlot(uint64_t ticket, const std::function<Status()>& body);
  Status RunWriteSlot(uint64_t ticket, const std::function<Status()>& body,
                      const std::function<void()>& epilogue);

  // --- transactions ---
  Result<Transaction*> Begin();
  Status Put(Transaction* txn, uint32_t table, Slice key, Slice value);
  Status Delete(Transaction* txn, uint32_t table, Slice key);
  Status Get(uint32_t table, Slice key, std::string* value);
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  // --- temporal queries ---
  /// Value of `key` as of commit time `time` (includes WORM-migrated
  /// history).
  Status GetAsOf(uint32_t table, Slice key, uint64_t time,
                 std::string* value);
  /// Full version history, oldest first (live + migrated).
  Status GetHistory(uint32_t table, Slice key, std::vector<TupleData>* out);
  /// Latest value per key over [begin, end) (end empty = unbounded).
  Status ScanCurrent(uint32_t table, Slice begin, Slice end,
                     const std::function<Status(const TupleData&)>& fn);

  // --- snapshot reads ---
  /// Opens a read handle pinned at the last commit time. Its Get/GetAsOf/
  /// ScanCurrent run concurrently with the single writer from any thread
  /// (committed versions are immutable in a transaction-time store, so no
  /// read locks are taken — see DESIGN.md, "Concurrency model"). Delete
  /// the handle to release it; Audit() reports Busy while any are open.
  Result<SnapshotReader*> BeginSnapshot();
  int open_snapshots() const {
    return open_snapshots_.load(std::memory_order_acquire);
  }

  // --- retention & shredding (§VIII) ---
  Status SetRetention(uint32_t table, uint64_t retention_micros);
  Result<VacuumReport> Vacuum(uint32_t table);

  // --- litigation holds (§IX) ---
  /// Protects every key of `table` starting with `key_prefix` from
  /// shredding until the hold is released. Audited and versioned.
  Status PlaceHold(uint32_t table, Slice key_prefix);
  Status ReleaseHold(uint32_t table, Slice key_prefix);
  Result<bool> IsHeld(uint32_t table, Slice key);

  // --- time & maintenance ---
  uint64_t Now() const { return clock_->NowMicros(); }
  /// Advances a simulated clock and performs any regret-interval work
  /// that became due (dirty-page forcing, lazy stamping, heartbeats,
  /// witness files, transaction-log tail rotation).
  Status AdvanceClock(uint64_t micros);
  Status FlushAll();

  // --- audit (§IV) ---
  /// Quiesces, flushes, audits the current epoch; on success releases
  /// superseded WORM files and begins the next epoch. Runs with the
  /// configured audit_threads (or the COMPLYDB_AUDIT_THREADS override);
  /// the overload pins a specific worker count for this run.
  Result<AuditReport> Audit();
  Result<AuditReport> Audit(uint32_t num_threads);
  /// Full audit honoring caller-tuned AuditOptions knobs. The facade owns
  /// key/paths/resolvers; what it honors from `overrides` is num_threads
  /// (0 = hardware_concurrency), wait_for_quiesce and
  /// quiesce_deadline_micros (poll for quiescence on wall time instead of
  /// returning Busy immediately), and the verification toggles.
  Result<AuditReport> Audit(const AuditOptions& overrides);
  uint64_t epoch() const { return epoch_; }
  uint64_t last_audit_time() const { return last_audit_time_; }

  // --- incremental certification (online audit; DESIGN.md §"Incremental
  // certification") ---
  /// Forces an epoch seal covering everything appended to L so far: makes
  /// L durable through its current size, then seals through that offset.
  /// No-op when compliance is disabled or nothing new was appended.
  Status SealEpochNow();

  /// Certifies every sealed-but-uncertified epoch by replaying only the
  /// delta since the last certified epoch — O(delta), not O(|L|) — while
  /// readers and the multi-writer pipeline keep running (no quiescence).
  /// Seals the L tail first so the freshest commits are certifiable. On a
  /// clean run the certification marker is persisted to WORM, shrinking
  /// the trusted base to the latest certified chain root. Detected
  /// tampering surfaces as report problems (ok() == false), never as an
  /// error status. The overload pins the worker count for this run.
  Result<IncrementalAuditReport> AuditIncremental();
  Result<IncrementalAuditReport> AuditIncremental(uint32_t num_threads);

  /// Reference cross-check for the incremental path: replays the WHOLE
  /// certified chain from the epoch-seed state with a fresh cursor
  /// (ignoring any persisted certification marker) and returns the same
  /// report shape. Incremental and full-replay runs over the same chain
  /// are asserted verdict-equivalent in tests.
  Result<IncrementalAuditReport> AuditFullReplay(uint32_t num_threads);

  /// Highest sealed-epoch sequence number certified so far (0 = none).
  uint64_t CertifiedEpoch();

  struct CertificationStatus {
    bool enabled = false;         // compliance on and sealing wired
    uint64_t audit_epoch = 0;     // full-audit epoch the chain lives in
    uint64_t sealed_seq = 0;      // sealed epochs in the chain
    uint64_t sealed_offset = 0;   // L bytes covered by sealed epochs
    uint64_t certified_seq = 0;   // certified prefix of the chain
    uint64_t certified_offset = 0;
    uint64_t log_size = 0;        // current |L|
    uint64_t backlog_epochs = 0;  // sealed - certified
    uint64_t backlog_bytes = 0;   // log_size - certified_offset
    uint64_t last_incremental_us = 0;  // duration of the last run (0 = none)
    Sha256Digest chain_root{};    // last certified chain digest
  };
  Result<CertificationStatus> Certification();

  /// Builds a Merkle inclusion proof that version (`key`, `value`,
  /// `commit_time`) of `table` is committed under the last certified chain
  /// root. NotFound when nothing is certified yet or the version is newer
  /// than the certified prefix. Verify client-side with
  /// VerifyInclusionProof against an independently remembered root.
  Result<InclusionProof> ProveInclusion(uint32_t table, Slice key,
                                        Slice value, uint64_t commit_time);

  // --- statistics ---
  struct TableStats {
    std::string name;
    uint32_t tree_id = 0;
    size_t leaf_pages = 0;
    size_t internal_pages = 0;
    size_t versions = 0;
  };
  struct DbStats {
    uint64_t epoch = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_evictions = 0;
    uint64_t disk_reads = 0;
    uint64_t disk_writes = 0;
    uint64_t wal_bytes = 0;
    uint64_t compliance_log_bytes = 0;
    uint64_t compliance_log_records = 0;
    uint64_t historical_pages = 0;
    uint64_t historical_tuples = 0;
    uint64_t worm_violations = 0;
    std::vector<TableStats> tables;
  };
  Result<DbStats> Stats();

  /// Process-wide metrics registry (counters, gauges, latency histograms
  /// with p50/p95/p99) as a JSON document. See docs/OBSERVABILITY.md for
  /// the metric catalog.
  std::string DumpMetricsJson() const;
  /// The same registry in Prometheus text exposition format.
  std::string DumpMetricsPrometheus() const;

  // --- introspection (tests & benchmarks) ---
  DiskManager* disk() { return disk_.get(); }
  /// The running telemetry endpoint, or null when disabled / bind failed.
  obs::TelemetryServer* telemetry() { return telemetry_.get(); }
  BufferCache* cache() { return cache_.get(); }
  LogManager* wal() { return wal_.get(); }
  WormStore* worm() { return worm_.get(); }
  ComplianceLogger* compliance_logger() { return logger_.get(); }
  TransactionManager* txns() { return txns_.get(); }
  /// The commit pipeline, or null when write_threads resolved to 1.
  CommitPipeline* write_pipeline() { return pipeline_.get(); }
  /// Writer-thread count after the COMPLYDB_WRITE_THREADS override.
  uint32_t write_threads() const { return write_threads_; }
  /// "async", "sync", or "off" — how compliance records reach WORM.
  const char* shipper_mode() const {
    if (!options_.compliance.enabled) return "off";
    return options_.compliance.async_shipping ? "async" : "sync";
  }
  /// "disjoint" (scheduler active), "turnstile" (pipeline without the
  /// scheduler), or "serial" (no pipeline).
  const char* scheduler_mode() const {
    if (pipeline_ == nullptr) return "serial";
    return pipeline_->scheduler() != nullptr ? "disjoint" : "turnstile";
  }
  HistoricalStore* historical() { return hist_.get(); }
  Btree* tree(uint32_t table) { return txns_->GetTree(table); }
  std::string db_path() const { return options_.dir + "/data.db"; }
  std::string wal_path() const { return options_.dir + "/txn.wal"; }
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  bool recovered_from_crash() const { return recovered_from_crash_; }

 private:
  explicit CompliantDB(const DbOptions& options) : options_(options) {}

  Status Init();
  Status LoadCatalog();
  Status SaveCatalog();
  Status MaybeRegretTick();
  /// Replays a concurrent slot's staged ops through the engine (caller
  /// holds the open slot; runs serially in ticket order).
  Status ApplySlotBuffer(SlotWriteBuffer* buf);
  Status RotateTxTail();
  RetentionResolver MakeRetentionResolver();
  /// Lazily attaches the certification cursor to the current epoch
  /// (caller holds cert_mu_). Resets and re-attaches after a full audit
  /// bumps the epoch.
  Status EnsureCursorLocked();
  Result<AuditReport> AuditInternal(const AuditOptions& overrides);

  DbOptions options_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_ = nullptr;
  std::unique_ptr<WormStore> worm_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> wal_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<WalFlushHook> wal_hook_;
  std::unique_ptr<ComplianceLogger> logger_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<CommitPipeline> pipeline_;
  uint32_t write_threads_ = 1;
  uint64_t serial_slot_seq_ = 0;  // ReserveWriteSlot without a pipeline
  std::unique_ptr<HistoricalStore> hist_;
  std::unique_ptr<TimeSplitPolicy> split_policy_;
  std::unique_ptr<ExpiryPolicy> expiry_;
  std::unique_ptr<LitigationHolds> holds_;
  std::unique_ptr<Vacuumer> vacuumer_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;

  struct TableInfo {
    uint32_t tree_id = 0;
    PageId root = kInvalidPage;
    std::string name;
    std::unique_ptr<Btree> tree;
  };
  struct IndexInfo {
    uint32_t index_tree = 0;
    IndexExtractor extractor;
  };

  std::map<std::string, uint32_t> table_ids_;
  std::map<uint32_t, TableInfo> tables_;
  std::map<uint32_t, std::vector<IndexInfo>> indexes_;  // base table -> idx
  uint32_t next_tree_id_ = 1;
  uint32_t expiry_tree_id_ = 0;
  uint32_t holds_tree_id_ = 0;

  // --- incremental certification state ---
  // Lock order: cert_mu_ -> sealer's internal mutex -> worm mutex. The
  // pipeline's seal hook takes only the sealer mutex, so it never crosses
  // cert_mu_ and readers/writers stay independent of certification runs.
  std::unique_ptr<EpochSealer> sealer_;
  std::mutex cert_mu_;
  std::unique_ptr<AuditCursor> cursor_;  // guarded by cert_mu_
  std::atomic<uint64_t> last_incremental_us_{0};

  uint64_t epoch_ = 0;
  uint64_t last_audit_time_ = 0;
  uint64_t last_regret_tick_ = 0;
  uint64_t txtail_seq_ = 0;
  RecoveryReport recovery_report_;
  bool recovered_from_crash_ = false;
  bool closed_ = false;
  std::atomic<int> open_snapshots_{0};
};

}  // namespace complydb

#endif  // COMPLYDB_DB_COMPLIANT_DB_H_
