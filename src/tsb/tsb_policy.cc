#include "tsb/tsb_policy.h"

#include <cstring>
#include <mutex>

#include "compliance/compliance_log.h"

namespace complydb {

SplitKind TimeSplitPolicy::Decide(const Page& leaf) {
  uint16_t count = leaf.slot_count();
  if (count == 0) return SplitKind::kKeySplit;
  size_t distinct = 0;
  std::string prev_key;
  bool has_prev = false;
  for (uint16_t i = 0; i < count; ++i) {
    Slice key;
    uint64_t start = 0;
    if (!DecodeTupleKey(leaf.RecordAt(i), &key, &start).ok()) {
      return SplitKind::kKeySplit;
    }
    if (!has_prev || key.view() != prev_key) {
      ++distinct;
      prev_key = key.ToString();
      has_prev = true;
    }
  }
  double fraction = static_cast<double>(distinct) / count;
  return fraction < threshold_ ? SplitKind::kTimeSplit : SplitKind::kKeySplit;
}

Status HistoricalStore::LoadAll() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& name : worm_->ListPrefix("hist_")) {
    std::string blob;
    CDB_RETURN_IF_ERROR(worm_->ReadAll(name, &blob));
    if (blob.size() != kPageSize) {
      return Status::Corruption("historical page " + name + " wrong size");
    }
    Page image;
    std::memcpy(image.data(), blob.data(), kPageSize);
    // Name format: hist_<tree8>_<seq8>.
    uint32_t tree_id = image.tree_id();
    uint64_t seq = 0;
    if (name.size() >= 22) {
      seq = std::strtoull(name.c_str() + 14, nullptr, 10);
    }
    if (seq >= next_seq_[tree_id]) next_seq_[tree_id] = seq + 1;
    CDB_RETURN_IF_ERROR(IndexPage(tree_id, name, image));
  }
  return Status::OK();
}

Status HistoricalStore::IndexPage(uint32_t tree_id, const std::string& name,
                                  const Page& image) {
  CDB_RETURN_IF_ERROR(image.CheckStructure());
  FileInfo& info = files_[name];
  info.tree_id = tree_id;
  for (uint16_t i = 0; i < image.slot_count(); ++i) {
    TupleData t;
    CDB_RETURN_IF_ERROR(DecodeTuple(image.RecordAt(i), &t));
    index_[{tree_id, t.key}].push_back(t);
    info.tuples.push_back(t);
    ++tuple_count_;
  }
  ++page_count_;
  return Status::OK();
}

std::vector<std::string> HistoricalStore::FilesFor(uint32_t tree_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, info] : files_) {
    if (info.tree_id == tree_id) names.push_back(name);
  }
  return names;
}

std::vector<TupleData> HistoricalStore::FileTuples(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return {};
  return it->second.tuples;
}

Status HistoricalStore::DropFile(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such historical file");
  for (const auto& t : it->second.tuples) {
    auto key_it = index_.find({it->second.tree_id, t.key});
    if (key_it == index_.end()) continue;
    auto& versions = key_it->second;
    for (size_t i = 0; i < versions.size(); ++i) {
      if (versions[i].start == t.start) {
        versions.erase(versions.begin() + i);
        --tuple_count_;
        break;
      }
    }
    if (versions.empty()) index_.erase(key_it);
  }
  files_.erase(it);
  --page_count_;
  return Status::OK();
}

Result<std::string> HistoricalStore::WriteHistoricalPage(uint32_t tree_id,
                                                         const Page& image) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t seq = next_seq_[tree_id]++;
  std::string name = HistPageFileName(tree_id, seq);
  CDB_RETURN_IF_ERROR(
      worm_->CreateWithContent(name, 0, Slice(image.data(), kPageSize)));
  CDB_RETURN_IF_ERROR(IndexPage(tree_id, name, image));
  return name;
}

std::vector<TupleData> HistoricalStore::GetVersions(uint32_t tree_id,
                                                    Slice key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find({tree_id, key.ToString()});
  if (it == index_.end()) return {};
  return it->second;
}

}  // namespace complydb
