#ifndef COMPLYDB_TSB_TSB_POLICY_H_
#define COMPLYDB_TSB_TSB_POLICY_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "btree/split_policy.h"
#include "btree/tuple.h"
#include "worm/worm_store.h"

namespace complydb {

/// The time-split B+-tree split rule (paper §VI, after Lomet & Salzberg):
/// "if the number of distinct keys in a leaf page is less than the
/// split-threshold fraction of the total number of tuples, the page is
/// split on keys; otherwise it is split on time."
///
/// A time split migrates superseded (historical) versions to a WORM
/// historical page; pages dominated by updates to few keys (STOCK-like
/// skew) time-split even at low thresholds, while uniformly-updated pages
/// (ORDER_LINE-like) never time-split below threshold 0.5 — the shape of
/// the paper's Fig. 4.
class TimeSplitPolicy : public SplitPolicy {
 public:
  explicit TimeSplitPolicy(double split_threshold)
      : threshold_(split_threshold) {}

  SplitKind Decide(const Page& leaf) override;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

/// WORM-backed store of historical pages produced by time splits, plus an
/// in-memory version index so temporal queries still see migrated
/// versions. (The paper keeps historical pages addressable through the
/// TSB-tree itself; an in-memory side index over the WORM files preserves
/// the same visibility with far less machinery — see DESIGN.md.)
///
/// Thread-safe: a reader/writer lock lets snapshot readers consult the
/// version index concurrently with the writer's migrations and vacuums.
class HistoricalStore : public MigrationSink {
 public:
  explicit HistoricalStore(WormStore* worm) : worm_(worm) {}

  /// Loads the index from all hist_* files already on WORM.
  Status LoadAll();

  // MigrationSink:
  Result<std::string> WriteHistoricalPage(uint32_t tree_id,
                                          const Page& image) override;

  /// Historical versions of `key` in `tree_id`, oldest first.
  std::vector<TupleData> GetVersions(uint32_t tree_id, Slice key) const;

  /// Names of this tree's historical page files still in the index.
  std::vector<std::string> FilesFor(uint32_t tree_id) const;

  /// Tuples stored in one historical page file.
  std::vector<TupleData> FileTuples(const std::string& name) const;

  /// Drops a fully-shredded file from the in-memory index (the WORM file
  /// itself is deleted by the auditor after verifying the shreds, §VIII:
  /// "the unit of deletion on WORM is an entire file").
  Status DropFile(const std::string& name);

  uint64_t page_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return page_count_;
  }
  uint64_t tuple_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tuple_count_;
  }

 private:
  /// Requires mu_ held exclusively.
  Status IndexPage(uint32_t tree_id, const std::string& name,
                   const Page& image);

  mutable std::shared_mutex mu_;
  WormStore* worm_;
  std::map<uint32_t, uint64_t> next_seq_;
  std::map<std::pair<uint32_t, std::string>, std::vector<TupleData>> index_;
  struct FileInfo {
    uint32_t tree_id = 0;
    std::vector<TupleData> tuples;
  };
  std::map<std::string, FileInfo> files_;
  uint64_t page_count_ = 0;
  uint64_t tuple_count_ = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_TSB_TSB_POLICY_H_
