#include "wal/log_manager.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/coding.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace complydb {

namespace {
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* flushes;
  obs::Counter* flush_bytes;
  obs::Histogram* fsync_us;
  WalMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    appends = reg.GetCounter("wal.appends");
    flushes = reg.GetCounter("wal.fsyncs");
    flush_bytes = reg.GetCounter("wal.flush_bytes");
    fsync_us = reg.GetHistogram("wal.fsync_us");
  }
};
WalMetrics& Wm() {
  static WalMetrics m;
  return m;
}
}  // namespace

Result<LogManager*> LogManager::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("wal open " + path + ": " + std::strerror(errno));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("wal seek " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("wal tell " + path);
  }
  Lsn base = 0;
  if (size == 0) {
    // Fresh log: write the base-LSN header.
    char header[kHeaderSize];
    EncodeFixed64(header, 0);
    if (std::fwrite(header, 1, kHeaderSize, f) != kHeaderSize ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return Status::IOError("wal header write " + path);
    }
    size = kHeaderSize;
  } else if (static_cast<size_t>(size) >= kHeaderSize) {
    char header[kHeaderSize];
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize) {
      std::fclose(f);
      return Status::IOError("wal header read " + path);
    }
    base = DecodeFixed64(header);
  } else {
    std::fclose(f);
    return Status::Corruption("wal shorter than its header: " + path);
  }
  Lsn end = base + (static_cast<Lsn>(size) - kHeaderSize);
  return new LogManager(path, f, base, end);
}

LogManager::~LogManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Lsn LogManager::Append(WalRecord* rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec->lsn = durable_end_ + pending_.size();
  pending_ += rec->Encode();
  Wm().appends->Inc();
  return rec->lsn;
}

Status LogManager::FlushTo(Lsn target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (target < durable_end_) return Status::OK();
  return FlushAllLocked();
}

Status LogManager::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushAllLocked();
}

Status LogManager::FlushAllLocked() {
  if (pending_.empty()) return Status::OK();
  WalMetrics& wm = Wm();
  obs::ScopedLatencyTimer timer(wm.fsync_us);
  // Keyed by the committing transaction when one is on this thread (the
  // group-commit flush point); recovery/checkpoint flushes carry 0.
  obs::ScopedSpan span(obs::SpanKind::kWalFsync,
                       obs::ActiveCommitSegments()->active
                           ? obs::ActiveCommitSegments()->txn_id
                           : 0);
  if (std::fseek(file_, 0, SEEK_END) != 0) return Status::IOError("wal seek");
  size_t n = std::fwrite(pending_.data(), 1, pending_.size(), file_);
  if (n != pending_.size()) return Status::IOError("wal short write");
  if (std::fflush(file_) != 0) return Status::IOError("wal flush");
  if (tail_worm_ != nullptr && !tail_name_.empty()) {
    // Deferred mode buffers the mirror bytes; the epoch barrier pays the
    // WORM round trip once per epoch instead of once per commit.
    if (tail_defer_) {
      CDB_RETURN_IF_ERROR(tail_worm_->AppendUnflushed(tail_name_, pending_));
    } else {
      CDB_RETURN_IF_ERROR(tail_worm_->Append(tail_name_, pending_));
    }
  }
  wm.flushes->Inc();
  wm.flush_bytes->Inc(pending_.size());
  durable_end_ += pending_.size();
  span.set_arg(durable_end_);
  obs::TraceRing::Global().Emit(obs::TraceEventType::kWalFsync,
                                pending_.size(), durable_end_);
  pending_.clear();
  return Status::OK();
}

Status LogManager::FlushTailMirror() {
  WormStore* worm = nullptr;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!tail_defer_ || tail_worm_ == nullptr || tail_name_.empty()) {
      return Status::OK();
    }
    worm = tail_worm_;
    name = tail_name_;
  }
  // Outside mu_: the WORM flush latency must overlap with the next slot's
  // WAL flush, not serialize with it. StartTail only reconfigures the
  // tail on a quiescent database (audit/init), so the copied handle
  // cannot go stale mid-flush.
  return worm->FlushAppends(name);
}

Status LogManager::Scan(
    const std::function<Status(const WalRecord&)>& fn) const {
  // Snapshot the durable extent; the scan itself reads the file through
  // its own stream, so a concurrent flush appending past the snapshot is
  // simply not visited.
  Lsn base, durable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = base_lsn_;
    durable = durable_end_;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return Status::IOError("wal scan open " + path_);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderSize) return Status::OK();
  // Only durable bytes are authoritative.
  size_t durable_bytes = kHeaderSize + (durable - base);
  if (blob.size() > durable_bytes) blob.resize(durable_bytes);
  size_t off = kHeaderSize;
  while (off < blob.size()) {
    // A torn final record (not enough bytes for its frame) ends the scan.
    if (blob.size() - off < 8) break;
    uint32_t len = DecodeFixed32(blob.data() + off);
    if (blob.size() - off < 8 + static_cast<size_t>(len)) break;
    WalRecord rec;
    size_t consumed = 0;
    Status s = WalRecord::Decode(Slice(blob.data() + off, blob.size() - off),
                                 &rec, &consumed);
    if (!s.ok()) return s;  // mid-log corruption: surface it
    rec.lsn = base + (off - kHeaderSize);
    CDB_RETURN_IF_ERROR(fn(rec));
    off += consumed;
  }
  return Status::OK();
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pending_.empty()) {
    return Status::Busy("wal truncate with unflushed records");
  }
  std::fclose(file_);
  std::FILE* f = std::fopen(path_.c_str(), "w+b");
  if (f == nullptr) return Status::IOError("wal truncate reopen " + path_);
  base_lsn_ = durable_end_;
  char header[kHeaderSize];
  EncodeFixed64(header, base_lsn_);
  if (std::fwrite(header, 1, kHeaderSize, f) != kHeaderSize ||
      std::fflush(f) != 0) {
    std::fclose(f);
    file_ = nullptr;
    return Status::IOError("wal truncate header " + path_);
  }
  file_ = f;
  return Status::OK();
}

Status LogManager::StartTail(WormStore* worm, const std::string& name,
                             uint64_t retention_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  CDB_RETURN_IF_ERROR(FlushAllLocked());
  if (name.empty()) {
    tail_worm_ = nullptr;
    tail_name_.clear();
    return Status::OK();
  }
  std::string header;
  PutFixed64(&header, durable_end_);
  CDB_RETURN_IF_ERROR(worm->CreateWithContent(name, retention_micros, header));
  tail_worm_ = worm;
  tail_name_ = name;
  return Status::OK();
}

}  // namespace complydb
