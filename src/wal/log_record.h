#ifndef COMPLYDB_WAL_LOG_RECORD_H_
#define COMPLYDB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace complydb {

using TxnId = uint64_t;

/// Transaction-log record types (ARIES-lite).
///
/// Tuple-level records are physiological: they name a page and carry the
/// full tuple bytes, so redo re-inserts and undo removes by content.
/// Structure modifications (splits, root growth, page formats) are logged
/// as redo-only full page images and are never undone — in a
/// transaction-time store a split survives even if the transaction that
/// triggered it aborts.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,       // abort decided (undo follows)
  kEnd = 4,         // undo complete
  kTupleInsert = 5, // redo: insert tuple on page; undo: remove it
  kTupleRemove = 6, // redo: remove tuple from page; undo: re-insert (vacuum)
  kTupleStamp = 7,  // redo-only: replace txn-id start with commit time
  kPageImage = 8,   // redo-only full page image (SMO)
  kClrRemove = 9,   // compensation for kTupleInsert: tuple removed again
  kCheckpoint = 10,
  kIndexInsert = 11, // redo-only: separator inserted into an internal node
  kClrInsert = 12,  // compensation for kTupleRemove: tuple re-inserted
};

/// One WAL record. lsn is assigned by the LogManager at append time (the
/// byte offset of the record in the log).
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  Lsn lsn = 0;
  Lsn prev_lsn = 0;  // previous record of the same transaction
  TxnId txn_id = 0;

  // kTupleInsert / kTupleRemove / kClr / kTupleStamp / kPageImage:
  PageId pgno = kInvalidPage;
  uint32_t tree_id = 0;

  // kTupleInsert / kTupleRemove / kClr: the page record bytes.
  std::string tuple;

  // kTupleStamp: which tuple (by order number) and the commit time.
  uint16_t order_no = 0;
  uint64_t commit_time = 0;

  // kCommit: commit time. kClr: next lsn to undo (undo_next).
  Lsn undo_next = 0;

  // kPageImage: the full page bytes (kPageSize).
  std::string page_image;

  /// Serializes to framed bytes: len u32 | crc u32 | payload.
  std::string Encode() const;

  /// Decodes one framed record from the front of `input`; on success sets
  /// *consumed to the framed size. The caller fills in lsn from the offset.
  static Status Decode(Slice input, WalRecord* out, size_t* consumed);
};

}  // namespace complydb

#endif  // COMPLYDB_WAL_LOG_RECORD_H_
