#ifndef COMPLYDB_WAL_WAL_IO_HOOK_H_
#define COMPLYDB_WAL_WAL_IO_HOOK_H_

#include "storage/io_hook.h"
#include "wal/log_manager.h"

namespace complydb {

/// Write-ahead rule as an IoHook: before any page image reaches disk, the
/// WAL is flushed through that page's LSN. Registered before the
/// compliance logger, so the ordering on every pwrite is
///   WAL durable -> compliance records on WORM -> page bytes on disk.
class WalFlushHook : public IoHook {
 public:
  explicit WalFlushHook(LogManager* log) : log_(log) {}

  Status OnPageRead(PageId, const Page&) override { return Status::OK(); }
  Status OnPageWrite(PageId, const Page& image) override {
    return log_->FlushTo(image.lsn());
  }

 private:
  LogManager* log_;
};

}  // namespace complydb

#endif  // COMPLYDB_WAL_WAL_IO_HOOK_H_
