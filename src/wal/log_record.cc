#include "wal/log_record.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace complydb {

std::string WalRecord::Encode() const {
  std::string payload;
  payload.push_back(static_cast<char>(type));
  PutFixed64(&payload, prev_lsn);
  PutFixed64(&payload, txn_id);
  PutFixed32(&payload, pgno);
  PutFixed32(&payload, tree_id);
  PutFixed16(&payload, order_no);
  PutFixed64(&payload, commit_time);
  PutFixed64(&payload, undo_next);
  PutLengthPrefixed(&payload, tuple);
  PutLengthPrefixed(&payload, page_image);

  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  PutFixed32(&framed, Crc32(payload));
  framed += payload;
  return framed;
}

Status WalRecord::Decode(Slice input, WalRecord* out, size_t* consumed) {
  Decoder dec(input);
  uint32_t len = 0;
  uint32_t crc = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&len));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&crc));
  if (dec.remaining() < len) return Status::Corruption("wal: truncated record");
  Slice payload(input.data() + 8, len);
  if (Crc32(payload) != crc) return Status::Corruption("wal: bad record crc");

  Decoder body(payload);
  std::string type_byte;
  CDB_RETURN_IF_ERROR(body.GetBytes(1, &type_byte));
  out->type = static_cast<WalRecordType>(static_cast<uint8_t>(type_byte[0]));
  CDB_RETURN_IF_ERROR(body.GetFixed64(&out->prev_lsn));
  CDB_RETURN_IF_ERROR(body.GetFixed64(&out->txn_id));
  CDB_RETURN_IF_ERROR(body.GetFixed32(&out->pgno));
  CDB_RETURN_IF_ERROR(body.GetFixed32(&out->tree_id));
  CDB_RETURN_IF_ERROR(body.GetFixed16(&out->order_no));
  CDB_RETURN_IF_ERROR(body.GetFixed64(&out->commit_time));
  CDB_RETURN_IF_ERROR(body.GetFixed64(&out->undo_next));
  CDB_RETURN_IF_ERROR(body.GetLengthPrefixed(&out->tuple));
  CDB_RETURN_IF_ERROR(body.GetLengthPrefixed(&out->page_image));

  *consumed = 8 + len;
  return Status::OK();
}

}  // namespace complydb
