#ifndef COMPLYDB_WAL_LOG_MANAGER_H_
#define COMPLYDB_WAL_LOG_MANAGER_H_

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "wal/log_record.h"
#include "worm/worm_store.h"

namespace complydb {

/// The DBMS transaction log. Lives on ordinary read/write media (and is
/// therefore attackable); its *tail* is mirrored onto WORM so that the
/// window between a commit and the regret-interval page flush is covered
/// (paper §IV: "we require the tail (the last two regret intervals) of the
/// DBMS's transaction log to be kept on WORM").
///
/// LSNs are logical byte offsets that survive checkpoint truncation: the
/// file begins with an 8-byte base LSN, and a record at file offset f has
/// LSN base + (f - 8). Append buffers in memory; FlushTo makes records
/// durable and simultaneously mirrors the flushed bytes to the current
/// WORM tail file, so the WORM copy is always at least as current as the
/// on-disk log.
///
/// Thread-safe: an internal mutex serializes appends, flushes, scans, and
/// truncation. Concurrent flushes happen in practice — the WalFlushHook
/// fires from whichever thread evicts a dirty page (reader threads
/// included), while the writer appends. Lock order: buffer-cache shard
/// mutex -> this mutex (never the reverse).
class LogManager {
 public:
  static constexpr size_t kHeaderSize = 8;

  static Result<LogManager*> Open(const std::string& path);

  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Assigns rec->lsn and buffers the record. Not yet durable.
  Lsn Append(WalRecord* rec);

  /// Makes all records with lsn <= target durable (we flush everything
  /// pending — group commit).
  Status FlushTo(Lsn target);
  Status FlushAll();

  Lsn durable_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_end_;
  }
  Lsn next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return durable_end_ + pending_.size();
  }

  /// Scans durable records in order. Stops cleanly at a torn tail (a
  /// truncated final record is how crashes manifest); a mid-log CRC
  /// mismatch is reported as Corruption.
  Status Scan(const std::function<Status(const WalRecord&)>& fn) const;

  /// Starts mirroring flushed bytes into worm file `name` (created here;
  /// its first 8 bytes record the starting LSN). Call after FlushAll.
  /// Passing an empty name stops mirroring.
  Status StartTail(WormStore* worm, const std::string& name,
                   uint64_t retention_micros);

  /// Writer-thread only (tail mirroring is reconfigured between runs, not
  /// concurrently with traffic), so no lock is taken for the reference.
  const std::string& tail_name() const { return tail_name_; }

  /// Epoch-deferred tail durability (the multi-writer commit pipeline):
  /// when set, FlushAll appends tail-mirror bytes to the WORM file
  /// *unflushed* instead of paying one WORM round trip per WAL flush, and
  /// the epoch barrier (or FlushTailMirror) makes them durable in one
  /// trip. Legal because the tail is prefix-tolerant audit evidence: the
  /// auditor compares only the bytes present and never reads the tail
  /// during recovery, so a crash that loses the buffered suffix shortens
  /// the evidence window without ever manufacturing a tampering verdict.
  /// The *local* WAL fflush stays per-commit in either mode (§IV-B: a
  /// STAMP must never become durable before its commit record).
  void set_tail_deferred(bool deferred) {
    std::lock_guard<std::mutex> lock(mu_);
    tail_defer_ = deferred;
  }

  /// Flushes deferred tail-mirror bytes through to the WORM store (one
  /// round trip). No-op unless deferral is on. The round trip is paid
  /// without holding mu_, so a committing writer's FlushAll never queues
  /// behind the barrier's WORM latency.
  Status FlushTailMirror();

  /// Simulates losing the in-memory buffer in a crash (tests).
  void DropPending() {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
  }

  /// Checkpoint truncation: discards all durable records (callers ensure
  /// every page they describe is flushed — i.e., right after a successful
  /// audit). LSNs continue from where they were; recovery after this point
  /// scans only post-checkpoint records.
  Status Truncate();

  Lsn base_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return base_lsn_;
  }

 private:
  LogManager(std::string path, std::FILE* file, Lsn base, Lsn end)
      : path_(std::move(path)), file_(file), base_lsn_(base),
        durable_end_(end) {}

  /// Requires mu_. Shared by FlushTo/FlushAll/StartTail.
  Status FlushAllLocked();

  mutable std::mutex mu_;
  std::string path_;
  std::FILE* file_;
  Lsn base_lsn_;
  Lsn durable_end_;
  std::string pending_;

  WormStore* tail_worm_ = nullptr;
  std::string tail_name_;
  bool tail_defer_ = false;
};

}  // namespace complydb

#endif  // COMPLYDB_WAL_LOG_MANAGER_H_
