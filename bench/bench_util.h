#ifndef COMPLYDB_BENCH_BENCH_UTIL_H_
#define COMPLYDB_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure/table reproduction harnesses. Each bench
// binary prints the same rows/series the paper reports (§VII); absolute
// numbers differ from the 2009 testbed, the *shapes* are the deliverable.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "db/compliant_db.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "tpcc/workload.h"

namespace complydb {
namespace bench {

inline constexpr uint64_t kMinute = 60ull * 1'000'000;

/// Which compliance configuration a run uses (the three lines of Fig. 3).
enum class Mode { kNative, kLogConsistent, kLogConsistentHashOnRead };

inline const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNative:
      return "native";
    case Mode::kLogConsistent:
      return "log-consistent";
    case Mode::kLogConsistentHashOnRead:
      return "log-consistent+hash-on-read";
  }
  return "?";
}

struct Timer {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }
  /// Restarts the timer — call after warm-up iterations so the measured
  /// window excludes cold caches and lazy initialization.
  void Reset() { start = std::chrono::steady_clock::now(); }
};

/// One TPC-C environment: fresh directory, simulated clock, loaded tables.
struct TpccEnv {
  std::unique_ptr<SimulatedClock> clock;
  std::unique_ptr<CompliantDB> db;
  std::unique_ptr<tpcc::Workload> workload;

  /// `tweak`, when set, runs over the assembled DbOptions right before
  /// Open — the escape hatch for knobs too bench-specific to deserve a
  /// positional parameter (read-side latency, scheduler on/off, ...).
  static Result<TpccEnv> Create(
      const std::string& dir, Mode mode, size_t cache_pages,
      const tpcc::Scale& scale, uint64_t seed, bool tsb = false,
      double tsb_threshold = 0.5, uint64_t io_latency_micros = 0,
      bool async_shipping = false, uint64_t worm_flush_latency_micros = 0,
      uint64_t group_commit_window_micros = 0, uint32_t write_threads = 1,
      const std::function<void(DbOptions*)>& tweak = nullptr) {
    std::filesystem::remove_all(dir);
    TpccEnv env;
    env.clock = std::make_unique<SimulatedClock>();
    DbOptions options;
    options.dir = dir;
    options.cache_pages = cache_pages;
    options.io_latency_micros = io_latency_micros;
    options.clock = env.clock.get();
    options.compliance.enabled = mode != Mode::kNative;
    options.compliance.hash_on_read =
        mode == Mode::kLogConsistentHashOnRead;
    options.compliance.regret_interval_micros = 5 * kMinute;
    options.compliance.async_shipping = async_shipping;
    options.worm_flush_latency_micros = worm_flush_latency_micros;
    if (group_commit_window_micros > 0) {
      options.compliance.group_commit_window_micros =
          group_commit_window_micros;
    }
    options.tsb_enabled = tsb;
    options.tsb_split_threshold = tsb_threshold;
    options.write_threads = write_threads;
    if (tweak) tweak(&options);

    auto open = CompliantDB::Open(options);
    if (!open.ok()) return open.status();
    env.db.reset(open.value());
    env.workload =
        std::make_unique<tpcc::Workload>(env.db.get(), scale, seed);
    CDB_RETURN_IF_ERROR(env.workload->CreateOrAttachTables());
    CDB_RETURN_IF_ERROR(env.workload->Load());
    return env;
  }

  /// Runs `n` mix transactions, advancing simulated time so regret-
  /// interval work (dirty-page forcing, stamping, witnesses) happens at a
  /// realistic cadence (~one interval per 500 transactions).
  Status RunTxns(uint64_t n) {
    tpcc::MixStats stats;
    uint64_t per_txn = 5 * kMinute / 500;
    for (uint64_t i = 0; i < n; ++i) {
      CDB_RETURN_IF_ERROR(workload->RunMix(1, &stats));
      clock->AdvanceMicros(per_txn);
    }
    return Status::OK();
  }

  /// Warm-up: runs `n` mix transactions, then zeroes the process-wide
  /// metrics, the trace ring, and the span ring so the measured region
  /// starts clean while the buffer cache and WORM files stay warm.
  Status Warmup(uint64_t n) {
    CDB_RETURN_IF_ERROR(RunTxns(n));
    obs::MetricsRegistry::Global().ResetAll();
    obs::TraceRing::Global().Reset();
    obs::SpanRing::Global().Reset();
    return Status::OK();
  }
};

inline uint64_t ArgOr(int argc, char** argv, int index, uint64_t fallback) {
  if (argc > index) return std::strtoull(argv[index], nullptr, 10);
  return fallback;
}

inline std::string BenchDir(const std::string& name) {
  const char* base = std::getenv("COMPLYDB_BENCH_DIR");
  return std::string(base != nullptr ? base : "/tmp") + "/complydb_bench_" +
         name;
}

/// Strips `--metrics-json[=path]` out of argv *before* positional parsing
/// so ArgOr indices are unaffected. Returns the artifact path (default
/// `BENCH_<name>.json` in the working directory) or "" if the flag is
/// absent.
inline std::string StripMetricsJsonFlag(int* argc, char** argv,
                                        const std::string& name) {
  const std::string kFlag = "--metrics-json";
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg == kFlag) {
      path = "BENCH_" + name + ".json";
    } else if (arg.rfind(kFlag + "=", 0) == 0) {
      path = arg.substr(kFlag.size() + 1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Strips `--<flag>=<n>` (or `--<flag> <n>`) out of argv before
/// positional parsing and returns its integer value, or `fallback` when
/// the flag is absent.
inline int64_t StripInt64Flag(int* argc, char** argv,
                              const std::string& flag, int64_t fallback) {
  int64_t value = fallback;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg == flag && i + 1 < *argc) {
      value = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg.rfind(flag + "=", 0) == 0) {
      value = std::strtoll(arg.c_str() + flag.size() + 1, nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

/// Strips `--trace-json[=path]` (or `--trace-json <path>`) out of argv
/// the same way. Returns the Chrome trace_event artifact path (default
/// `BENCH_<name>_trace.json`) or "" if the flag is absent.
inline std::string StripTraceJsonFlag(int* argc, char** argv,
                                      const std::string& name) {
  const std::string kFlag = "--trace-json";
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg == kFlag) {
      // A following non-flag, non-numeric token is the path; a bare flag
      // (or one followed by a positional count) keeps the default name.
      path = "BENCH_" + name + "_trace.json";
      if (i + 1 < *argc && argv[i + 1][0] != '-' &&
          !std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
        path = argv[++i];
      }
    } else if (arg.rfind(kFlag + "=", 0) == 0) {
      path = arg.substr(kFlag.size() + 1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Writes the per-run artifact: bench name, elapsed wall seconds, trace
/// totals, and the full metrics registry (per-subsystem counters plus
/// p50/p95/p99 latency histograms). No-op when `path` is empty.
inline Status WriteMetricsJson(const std::string& path,
                               const std::string& name,
                               double elapsed_seconds) {
  if (path.empty()) return Status::OK();
  auto& ring = obs::TraceRing::Global();
  std::string json = "{\"bench\":\"" + name +
                     "\",\"elapsed_seconds\":" +
                     std::to_string(elapsed_seconds) +
                     ",\"trace_events_total\":" + std::to_string(ring.total()) +
                     ",\"trace_events_dropped\":" +
                     std::to_string(ring.dropped()) + ",\"metrics\":" +
                     obs::MetricsRegistry::Global().ToJson() + "}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("metrics json open " + path);
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) return Status::IOError("metrics json write " + path);
  std::printf("metrics artifact: %s\n", path.c_str());
  return Status::OK();
}

}  // namespace bench
}  // namespace complydb

#endif  // COMPLYDB_BENCH_BENCH_UTIL_H_
