// §VII(c) audit time: the phases of the audit (previous snapshot, log
// replay, final-state scan, index check) after a TPC-C run, without and
// with hash-page-on-read verification, and the audit-effort reduction
// from WORM migration.
//
// Paper shapes: audit time is a tiny fraction of the run time that
// produced the log; hash-on-read adds a modest extra pass; migration
// removes historic pages from the audited set.
//
//   ./bench_audit_time [txns]

#include "bench_util.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

int AuditAfterRun(Mode mode, uint64_t txns, bool tsb) {
  tpcc::Scale scale;
  // 120 us simulated storage latency prices the run like the paper's NFS
  // testbed; the audit pays the same price for its sequential page scan.
  auto env = TpccEnv::Create(BenchDir("audit"), mode, 256, scale,
                             /*seed=*/11, tsb, 0.5, /*io_latency=*/120);
  if (!env.ok()) {
    std::fprintf(stderr, "setup: %s\n", env.status().ToString().c_str());
    return 1;
  }
  Timer run_timer;
  if (!env.value().RunTxns(txns).ok()) return 1;
  double run_seconds = run_timer.Seconds();

  auto report = env.value().db->Audit();
  if (!report.ok()) {
    std::fprintf(stderr, "audit: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const AuditReport& r = report.value();
  std::printf("%-30s %8s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %8llu %8llu\n",
              ModeName(mode), tsb ? "tsb" : "-", run_seconds,
              r.timings.total_seconds, r.timings.snapshot_seconds,
              r.timings.replay_seconds, r.timings.final_state_seconds,
              r.timings.index_check_seconds,
              static_cast<unsigned long long>(r.pages_checked),
              static_cast<unsigned long long>(r.read_hashes_checked));
  if (!r.ok()) {
    std::fprintf(stderr, "AUDIT FAILED: %s\n", r.problems[0].c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = StripMetricsJsonFlag(&argc, argv, "audit_time");
  Timer run_timer;
  uint64_t txns = ArgOr(argc, argv, 1, 1500);
  std::printf("=== §VII(c): audit time after %llu TPC-C transactions ===\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-30s %8s %9s %9s %9s %9s %9s %9s %8s %8s\n", "mode", "tsb",
              "run_s", "audit_s", "snap_s", "replay_s", "final_s", "index_s",
              "pages", "rdhash");

  if (AuditAfterRun(Mode::kLogConsistent, txns, false) != 0) return 1;
  if (AuditAfterRun(Mode::kLogConsistentHashOnRead, txns, false) != 0) {
    return 1;
  }
  if (AuditAfterRun(Mode::kLogConsistent, txns, true) != 0) return 1;

  std::printf("\nExpected shape: audit_s << run_s (paper: 351+104s audit vs "
              "2-3h run); hash-on-read adds replay cost; TSB shrinks the "
              "audited page set.\n");
  Status ms = WriteMetricsJson(metrics_path, "audit_time",
                               run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
