// §VII(c) audit time: the phases of the audit (previous snapshot, log
// replay, final-state scan, index check) after a TPC-C run, without and
// with hash-page-on-read verification, and the audit-effort reduction
// from WORM migration.
//
// Paper shapes: audit time is a tiny fraction of the run time that
// produced the log; hash-on-read adds a modest extra pass; migration
// removes historic pages from the audited set.
//
//   ./bench_audit_time [txns] [--threads=1,2,4,8]
//   ./bench_audit_time --incremental [steps] [txns-per-step]
//
// The --threads flag sweeps the parallel audit (sharded replay +
// chunked final-state scan) over the given worker counts on one store,
// reporting the speedup of the parallel phases over the serial
// reference. Timings land in the metrics artifact as
// audit_sweep.t<N>.* gauges (microseconds).
//
// The --incremental mode A/Bs the O(delta) incremental certification
// against a full chain replay at each growth step: after every batch of
// transactions it runs AuditIncremental (replays only the new sealed
// epochs) and AuditFullReplay (replays the whole chain from the epoch
// seed). The expected shape is incremental cost staying flat as |L|
// grows while full-replay cost grows linearly. Timings land as
// audit_incremental.step<i>.* gauges in BENCH_audit_incremental.json.

#include <string>
#include <vector>

#include "audit/auditor.h"
#include "bench_util.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

int AuditAfterRun(Mode mode, uint64_t txns, bool tsb) {
  tpcc::Scale scale;
  // 120 us simulated storage latency prices the run like the paper's NFS
  // testbed; the audit pays the same price for its sequential page scan.
  auto env = TpccEnv::Create(BenchDir("audit"), mode, 256, scale,
                             /*seed=*/11, tsb, 0.5, /*io_latency=*/120);
  if (!env.ok()) {
    std::fprintf(stderr, "setup: %s\n", env.status().ToString().c_str());
    return 1;
  }
  Timer run_timer;
  if (!env.value().RunTxns(txns).ok()) return 1;
  double run_seconds = run_timer.Seconds();

  auto report = env.value().db->Audit();
  if (!report.ok()) {
    std::fprintf(stderr, "audit: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const AuditReport& r = report.value();
  std::printf("%-30s %8s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %8llu %8llu\n",
              ModeName(mode), tsb ? "tsb" : "-", run_seconds,
              r.timings.total_seconds, r.timings.snapshot_seconds,
              r.timings.replay_seconds, r.timings.final_state_seconds,
              r.timings.index_check_seconds,
              static_cast<unsigned long long>(r.pages_checked),
              static_cast<unsigned long long>(r.read_hashes_checked));
  if (!r.ok()) {
    std::fprintf(stderr, "AUDIT FAILED: %s\n", r.problems[0].c_str());
    return 1;
  }
  return 0;
}

// Pulls `--threads=a,b,c` out of argv (before positional parsing) and
// returns the sweep list; default 1,2,4,8.
std::vector<uint32_t> StripThreadsFlag(int* argc, char** argv) {
  std::vector<uint32_t> counts = {1, 2, 4, 8};
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      counts.clear();
      std::string list = arg.substr(10);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        counts.push_back(static_cast<uint32_t>(
            std::strtoul(list.substr(pos, comma - pos).c_str(), nullptr,
                         10)));
        pos = comma + 1;
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (counts.empty()) counts.push_back(1);
  return counts;
}

// Runs one TPC-C store, then audits it repeatedly (no snapshot write, so
// every run covers the identical epoch) at each worker count. The
// speedup column is serial / parallel over replay + final-state — the
// two phases the worker pool shards.
int ThreadSweep(uint64_t txns, const std::vector<uint32_t>& counts) {
  tpcc::Scale scale;
  auto env = TpccEnv::Create(BenchDir("audit_threads"),
                             Mode::kLogConsistentHashOnRead, 256, scale,
                             /*seed=*/11, /*tsb=*/false, 0.5,
                             /*io_latency=*/0);
  if (!env.ok()) {
    std::fprintf(stderr, "setup: %s\n", env.status().ToString().c_str());
    return 1;
  }
  CompliantDB* db = env.value().db.get();
  if (!env.value().RunTxns(txns).ok()) return 1;
  if (!db->FlushAll().ok()) return 1;

  AuditOptions opts;
  opts.auditor_key = "auditor-secret-key";
  opts.verify_read_hashes = true;
  opts.identity_hash_check = true;
  opts.wal_path = db->wal_path();

  std::printf("\n=== parallel audit sweep (replay + final-state) ===\n");
  std::printf("%8s %9s %9s %9s %9s %9s\n", "threads", "audit_s", "replay_s",
              "final_s", "index_s", "speedup");
  double serial_work = 0;
  for (uint32_t n : counts) {
    opts.num_threads = n;
    Auditor auditor(opts, db->worm(), db->disk());
    auto report = auditor.Audit(db->epoch(), /*write_snapshot=*/false);
    if (!report.ok()) {
      std::fprintf(stderr, "audit: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const AuditReport& r = report.value();
    if (!r.ok()) {
      std::fprintf(stderr, "AUDIT FAILED: %s\n", r.problems[0].c_str());
      return 1;
    }
    double work = r.timings.replay_seconds + r.timings.final_state_seconds;
    if (serial_work == 0) serial_work = work;
    std::printf("%8u %9.3f %9.3f %9.3f %9.3f %8.2fx\n", r.threads_used,
                r.timings.total_seconds, r.timings.replay_seconds,
                r.timings.final_state_seconds,
                r.timings.index_check_seconds,
                work > 0 ? serial_work / work : 1.0);

    std::string prefix = "audit_sweep.t" + std::to_string(n) + ".";
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetGauge(prefix + "total_us")
        ->Set(static_cast<int64_t>(r.timings.total_seconds * 1e6));
    reg.GetGauge(prefix + "replay_us")
        ->Set(static_cast<int64_t>(r.timings.replay_seconds * 1e6));
    reg.GetGauge(prefix + "final_us")
        ->Set(static_cast<int64_t>(r.timings.final_state_seconds * 1e6));
    reg.GetGauge(prefix + "index_us")
        ->Set(static_cast<int64_t>(r.timings.index_check_seconds * 1e6));
  }
  return 0;
}

// Grows one store in steps; at each step certifies the new sealed epochs
// incrementally AND replays the whole chain, asserting both verdicts
// agree. The per-step delta is constant, so O(delta) shows up as a flat
// inc_s column while full_s grows with |L|.
int IncrementalSweep(uint64_t steps, uint64_t txns_per_step) {
  tpcc::Scale scale;
  auto env = TpccEnv::Create(BenchDir("audit_incremental"),
                             Mode::kLogConsistentHashOnRead, 256, scale,
                             /*seed=*/11, /*tsb=*/false, 0.5,
                             /*io_latency=*/0);
  if (!env.ok()) {
    std::fprintf(stderr, "setup: %s\n", env.status().ToString().c_str());
    return 1;
  }
  CompliantDB* db = env.value().db.get();

  std::printf("\n=== incremental certification vs full replay ===\n");
  std::printf("%5s %12s %12s %10s %9s %9s %9s\n", "step", "log_bytes",
              "delta_bytes", "epochs", "inc_s", "full_s", "full/inc");
  auto& reg = obs::MetricsRegistry::Global();
  for (uint64_t i = 0; i < steps; ++i) {
    if (!env.value().RunTxns(txns_per_step).ok()) return 1;

    Timer inc_timer;
    auto inc = db->AuditIncremental(1);
    double inc_s = inc_timer.Seconds();
    if (!inc.ok()) {
      std::fprintf(stderr, "incremental: %s\n",
                   inc.status().ToString().c_str());
      return 1;
    }
    if (!inc.value().ok()) {
      std::fprintf(stderr, "INCREMENTAL AUDIT FAILED: %s\n",
                   inc.value().problems[0].c_str());
      return 1;
    }

    Timer full_timer;
    auto full = db->AuditFullReplay(1);
    double full_s = full_timer.Seconds();
    if (!full.ok()) {
      std::fprintf(stderr, "full replay: %s\n",
                   full.status().ToString().c_str());
      return 1;
    }
    if (!full.value().ok()) {
      std::fprintf(stderr, "FULL REPLAY FAILED: %s\n",
                   full.value().problems[0].c_str());
      return 1;
    }
    // Verdict equivalence is part of the contract, not just the tests.
    if (full.value().state_digest != inc.value().state_digest ||
        full.value().chain_root != inc.value().chain_root) {
      std::fprintf(stderr, "DIVERGENCE: incremental and full replay "
                           "disagree at step %llu\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }

    auto stats = db->Stats();
    uint64_t log_bytes =
        stats.ok() ? stats.value().compliance_log_bytes : 0;
    std::printf("%5llu %12llu %12llu %10llu %9.4f %9.4f %8.2fx\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(log_bytes),
                static_cast<unsigned long long>(inc.value().bytes_replayed),
                static_cast<unsigned long long>(
                    inc.value().epochs_certified),
                inc_s, full_s, inc_s > 0 ? full_s / inc_s : 0.0);

    std::string prefix = "audit_incremental.step" + std::to_string(i) + ".";
    reg.GetGauge(prefix + "log_bytes")->Set(static_cast<int64_t>(log_bytes));
    reg.GetGauge(prefix + "delta_bytes")
        ->Set(static_cast<int64_t>(inc.value().bytes_replayed));
    reg.GetGauge(prefix + "inc_us")->Set(static_cast<int64_t>(inc_s * 1e6));
    reg.GetGauge(prefix + "full_us")
        ->Set(static_cast<int64_t>(full_s * 1e6));
  }
  std::printf("\nExpected shape: inc_s stays flat (O(delta): each step "
              "replays only its new epochs) while full_s grows with |L|.\n");
  return 0;
}

// Strips a bare `--incremental` flag.
bool StripIncrementalFlag(int* argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--incremental") {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  bool incremental = StripIncrementalFlag(&argc, argv);
  std::string metrics_path = StripMetricsJsonFlag(
      &argc, argv, incremental ? "audit_incremental" : "audit_time");
  std::vector<uint32_t> thread_counts = StripThreadsFlag(&argc, argv);

  if (incremental) {
    Timer inc_run_timer;
    uint64_t steps = ArgOr(argc, argv, 1, 6);
    uint64_t per_step = ArgOr(argc, argv, 2, 150);
    if (IncrementalSweep(steps, per_step) != 0) return 1;
    Status ms = WriteMetricsJson(metrics_path, "audit_incremental",
                                 inc_run_timer.Seconds());
    if (!ms.ok()) {
      std::fprintf(stderr, "%s\n", ms.ToString().c_str());
      return 1;
    }
    return 0;
  }
  Timer run_timer;
  uint64_t txns = ArgOr(argc, argv, 1, 1500);
  std::printf("=== §VII(c): audit time after %llu TPC-C transactions ===\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-30s %8s %9s %9s %9s %9s %9s %9s %8s %8s\n", "mode", "tsb",
              "run_s", "audit_s", "snap_s", "replay_s", "final_s", "index_s",
              "pages", "rdhash");

  if (AuditAfterRun(Mode::kLogConsistent, txns, false) != 0) return 1;
  if (AuditAfterRun(Mode::kLogConsistentHashOnRead, txns, false) != 0) {
    return 1;
  }
  if (AuditAfterRun(Mode::kLogConsistent, txns, true) != 0) return 1;

  if (ThreadSweep(txns, thread_counts) != 0) return 1;

  std::printf("\nExpected shape: audit_s << run_s (paper: 351+104s audit vs "
              "2-3h run); hash-on-read adds replay cost; TSB shrinks the "
              "audited page set.\n");
  Status ms = WriteMetricsJson(metrics_path, "audit_time",
                               run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
