// Micro-benchmarks for the primitives every compliance operation sits on:
// hashing, the incremental set hash, page record operations.

#include <benchmark/benchmark.h>

#include <string>

#include <filesystem>
#include <memory>

#include "bench_util.h"
#include "btree/btree.h"
#include "common/coding.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "crypto/add_hash.h"
#include "crypto/seq_hash.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "storage/buffer_cache.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace complydb {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536);

// Single-buffer throughput per pinned implementation. kAvx2 has no
// single-buffer kernel (it falls back to scalar), so the per-impl cases
// are scalar vs SHA-NI; the AVX2 lanes show up in the batch cases below.
void Sha256ImplBench(benchmark::State& state, Sha256Impl impl) {
  if (!Sha256ForceImpl(impl).ok()) {
    state.SkipWithError("implementation not supported on this CPU");
    return;
  }
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  (void)Sha256ForceImpl(Sha256Impl::kAuto);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(Sha256ImplBench, scalar, Sha256Impl::kScalar)
    ->Arg(64)
    ->Arg(8192);
BENCHMARK_CAPTURE(Sha256ImplBench, shani, Sha256Impl::kShaNi)
    ->Arg(64)
    ->Arg(8192);

// Batch of 8 equal-length buffers — the shape Sha256BatchHash vectorizes
// across AVX2 lanes (and loops through SHA-NI / scalar otherwise).
void Sha256BatchBench(benchmark::State& state, Sha256Impl impl) {
  if (!Sha256ForceImpl(impl).ok()) {
    state.SkipWithError("implementation not supported on this CPU");
    return;
  }
  constexpr size_t kLanes = 8;
  std::vector<std::string> bufs(
      kLanes, std::string(static_cast<size_t>(state.range(0)), 'x'));
  std::vector<Slice> slices;
  for (const auto& b : bufs) slices.emplace_back(b);
  std::vector<Sha256Digest> out(kLanes);
  for (auto _ : state) {
    Sha256BatchHash(slices.data(), kLanes, out.data());
    benchmark::DoNotOptimize(out);
  }
  (void)Sha256ForceImpl(Sha256Impl::kAuto);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLanes *
                          state.range(0));
}
BENCHMARK_CAPTURE(Sha256BatchBench, scalar, Sha256Impl::kScalar)
    ->Arg(64)
    ->Arg(8192);
BENCHMARK_CAPTURE(Sha256BatchBench, shani, Sha256Impl::kShaNi)
    ->Arg(64)
    ->Arg(8192);
BENCHMARK_CAPTURE(Sha256BatchBench, avx2, Sha256Impl::kAvx2)
    ->Arg(64)
    ->Arg(8192);

void BM_Sha512(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(512)->Arg(4096);

void BM_AddHashFold(benchmark::State& state) {
  Random rng(7);
  std::vector<std::string> tuples;
  for (int i = 0; i < 1024; ++i) tuples.push_back(rng.Bytes(100));
  for (auto _ : state) {
    AddHash h;
    for (const auto& t : tuples) h.Add(t);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AddHashFold);

void BM_SeqHashPage(benchmark::State& state) {
  // Hs over a typical page's worth of tuples.
  Random rng(7);
  std::vector<std::string> tuples;
  for (int i = 0; i < 36; ++i) tuples.push_back(rng.Bytes(100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeqHash::ComputeOwned(tuples));
  }
}
BENCHMARK(BM_SeqHashPage);

void BM_PageInsertErase(benchmark::State& state) {
  Random rng(7);
  std::string body = rng.Bytes(90);
  std::string rec;
  PutFixed16(&rec, static_cast<uint16_t>(2 + body.size()));
  rec += body;
  for (auto _ : state) {
    Page p;
    p.Format(1, PageType::kBtreeLeaf, 0, 0);
    while (p.AppendRecord(rec).ok()) {
    }
    while (p.slot_count() > 0) {
      (void)p.EraseRecord(0);
    }
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PageInsertErase);

void BM_BtreeInsert(benchmark::State& state) {
  std::string path = "/tmp/complydb_bench_micro_btree.db";
  Random rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    auto d = DiskManager::Open(path);
    std::unique_ptr<DiskManager> disk(d.value());
    BufferCache cache(disk.get(), 256);
    auto root = Btree::Create(&cache, 1);
    BtreeEnv env;
    env.cache = &cache;
    Btree tree(env, 1, root.value());
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      TupleData t;
      t.key = "key" + std::to_string(rng.Next() % 100000);
      t.value = "value-payload-of-reasonable-size";
      t.start = static_cast<uint64_t>(i + 1);
      t.stamped = true;
      benchmark::DoNotOptimize(tree.InsertVersion(nullptr, t, nullptr, nullptr));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeGetLatest(benchmark::State& state) {
  std::string path = "/tmp/complydb_bench_micro_btree_get.db";
  std::filesystem::remove(path);
  auto d = DiskManager::Open(path);
  std::unique_ptr<DiskManager> disk(d.value());
  BufferCache cache(disk.get(), 512);
  auto root = Btree::Create(&cache, 1);
  BtreeEnv env;
  env.cache = &cache;
  Btree tree(env, 1, root.value());
  for (int i = 0; i < 5000; ++i) {
    TupleData t;
    t.key = "key" + std::to_string(i);
    t.value = "value-payload";
    t.start = static_cast<uint64_t>(i + 1);
    t.stamped = true;
    (void)tree.InsertVersion(nullptr, t, nullptr, nullptr);
  }
  Random rng(11);
  for (auto _ : state) {
    TupleData out;
    std::string key = "key" + std::to_string(rng.Uniform(5000));
    benchmark::DoNotOptimize(tree.GetLatest(key, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BtreeGetLatest);

void BM_TupleEncodeDecode(benchmark::State& state) {
  Random rng(3);
  TupleData t;
  t.key = rng.Bytes(16);
  t.value = rng.Bytes(100);
  t.start = 123456789;
  t.stamped = true;
  for (auto _ : state) {
    std::string rec = EncodeTuple(t);
    TupleData back;
    benchmark::DoNotOptimize(DecodeTuple(rec, &back));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TupleEncodeDecode);

// --- observability layer overhead (ISSUE: < 3% vs compiled-out) ---------

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter* c = obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    c->Inc();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("bench.histogram_us");
  uint64_t v = 0;
  for (auto _ : state) {
    h->Record(v++ & 0xFFFF);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsScopedLatencyTimer(benchmark::State& state) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("bench.scoped_us");
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(h);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsScopedLatencyTimer);

void BM_ObsScopedLatencyTimerSamplingOff(benchmark::State& state) {
  obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("bench.scoped_off_us");
  obs::SetSampling(false);
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(h);
    benchmark::ClobberMemory();
  }
  obs::SetSampling(true);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsScopedLatencyTimerSamplingOff);

void BM_ObsTraceEmit(benchmark::State& state) {
  auto& ring = obs::TraceRing::Global();
  uint64_t i = 0;
  for (auto _ : state) {
    ring.Emit(obs::TraceEventType::kWalFsync, i++, 42);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsTraceEmit);

}  // namespace
}  // namespace complydb

int main(int argc, char** argv) {
  std::string metrics_path = complydb::bench::StripMetricsJsonFlag(
      &argc, argv, "micro");
  complydb::bench::Timer run_timer;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  complydb::Status ms = complydb::bench::WriteMetricsJson(
      metrics_path, "micro", run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
