// Threat-model table (paper §II, §IV-C, §V, §VIII): every attack Mala can
// mount, and whether each architecture variant detects it at audit. No
// figure in the paper corresponds to this table; it operationalizes the
// security claims the way the evaluation narrative states them.
//
//   ./bench_tamper_detection

#include <functional>

#include "adversary/mala.h"
#include "bench_util.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

struct Attack {
  const char* label;
  // Runs against a closed database; returns OK when the attack was applied.
  std::function<Status(Mala&, uint32_t table, const std::string& dir)> apply;
  // Whether hash-on-read is required for detection (state reversion).
  bool needs_read_hashes;
};

Result<bool> DetectedByAudit(const Attack& attack, bool hash_on_read) {
  std::string dir = BenchDir("tamper");
  std::filesystem::remove_all(dir);
  SimulatedClock clock;
  DbOptions options;
  options.dir = dir;
  options.cache_pages = 128;
  options.clock = &clock;
  options.compliance.enabled = true;
  options.compliance.hash_on_read = hash_on_read;
  options.compliance.regret_interval_micros = 5 * kMinute;

  uint32_t table = 0;
  {
    auto open = CompliantDB::Open(options);
    if (!open.ok()) return open.status();
    std::unique_ptr<CompliantDB> db(open.value());
    auto t = db->CreateTable("ledger");
    CDB_RETURN_IF_ERROR(t.status());
    table = t.value();
    for (int i = 0; i < 400; ++i) {
      auto txn = db->Begin();
      CDB_RETURN_IF_ERROR(txn.status());
      CDB_RETURN_IF_ERROR(db->Put(txn.value(), table,
                                  "rec" + std::to_string(10000 + i),
                                  "payload-" + std::to_string(i)));
      CDB_RETURN_IF_ERROR(db->Commit(txn.value()));
    }
    CDB_RETURN_IF_ERROR(db->Close());
  }

  Mala mala(dir + "/data.db");
  CDB_RETURN_IF_ERROR(attack.apply(mala, table, dir));

  auto open = CompliantDB::Open(options);
  if (!open.ok()) {
    // Refusing to even open (e.g., corrupt WAL) counts as detection.
    return true;
  }
  std::unique_ptr<CompliantDB> db(open.value());
  // A reader consumes data post-attack (matters for state reversion).
  std::string value;
  (void)db->Get(table, "rec10007", &value);
  CDB_RETURN_IF_ERROR(db->Close());
  db.reset();

  // State-reversion attacks revert here (the XOR tamper is an involution).
  if (attack.needs_read_hashes) {
    CDB_RETURN_IF_ERROR(mala.TamperTupleValue(table, "rec10007"));
  }

  auto reopen = CompliantDB::Open(options);
  if (!reopen.ok()) return true;
  db.reset(reopen.value());
  auto report = db->Audit();
  CDB_RETURN_IF_ERROR(report.status());
  return !report.value().ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path =
      StripMetricsJsonFlag(&argc, argv, "tamper_detection");
  Timer run_timer;
  std::vector<Attack> attacks = {
      {"retroactive value alteration",
       [](Mala& m, uint32_t t, const std::string&) {
         return m.TamperTupleValue(t, "rec10042");
       },
       false},
      {"leaf element swap (Fig 2b)",
       [](Mala& m, uint32_t t, const std::string&) {
         return m.SwapLeafEntries(t);
       },
       false},
      {"internal key tamper (Fig 2c)",
       [](Mala& m, uint32_t t, const std::string&) {
         return m.TamperInternalKey(t);
       },
       false},
      {"post-hoc backdated insertion",
       [](Mala& m, uint32_t t, const std::string&) {
         return m.InsertBackdatedTuple(t, "rec10500x", "forged",
                                       50ull * kMinute);
       },
       false},
      {"transaction-log truncation",
       [](Mala& m, uint32_t, const std::string& dir) {
         return m.TruncateWalFile(dir + "/txn.wal", 256);
       },
       false},
      {"tamper-read-revert (state reversion)",
       [](Mala& m, uint32_t t, const std::string&) {
         return m.TamperTupleValue(t, "rec10007");
       },
       true},
  };

  std::printf("=== Tamper-detection matrix ===\n");
  std::printf("%-40s %-18s %-24s\n", "attack", "log-consistent",
              "+hash-page-on-read");
  int failures = 0;
  for (const auto& attack : attacks) {
    std::string cells[2];
    for (int variant = 0; variant < 2; ++variant) {
      bool hash_on_read = variant == 1;
      auto detected = DetectedByAudit(attack, hash_on_read);
      if (!detected.ok()) {
        cells[variant] = "error: " + detected.status().ToString();
        ++failures;
        continue;
      }
      bool expect =
          !attack.needs_read_hashes || hash_on_read;  // reversion needs §V
      bool got = detected.value();
      cells[variant] = std::string(got ? "DETECTED" : "undetected") +
                       (got == expect ? "" : "  <-- UNEXPECTED");
      if (got != expect) ++failures;
    }
    std::printf("%-40s %-18s %-24s\n", attack.label, cells[0].c_str(),
                cells[1].c_str());
  }
  std::printf("\nExpected: every attack detected; state reversion is the "
              "one case the base architecture misses by design (§V) and "
              "hash-page-on-read closes.\n");
  Status ms = WriteMetricsJson(metrics_path, "tamper_detection",
                               run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
