// Figure 4 (a)(b): effect of the time-split threshold on the number of
// live pages and WORM (historic) pages, for a STOCK-shaped relation
// (skewed: few hot keys updated many times) and an ORDER_LINE-shaped
// relation (uniform: each key updated at most once).
//
// Paper shapes to reproduce:
//  - STOCK: historic pages appear even at low thresholds (skew forces
//    time splits); live pages dip around the initial fill factor.
//  - ORDER_LINE: no historic pages below threshold 0.5; historic pages
//    climb rapidly at high thresholds while live pages shrink slowly.
//
//   ./bench_fig4_tsb [keys] [updates]

#include <vector>

#include "bench_util.h"
#include "tpcc/tpcc_random.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

struct Shape {
  const char* label;
  bool skewed;  // STOCK-like vs ORDER_LINE-like
};

int RunShape(const Shape& shape, uint64_t keys, uint64_t updates) {
  std::printf("\n=== Fig 4 %s (%llu keys, %llu updates) ===\n", shape.label,
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(updates));
  std::printf("%10s %12s %15s\n", "threshold", "live_pages", "historic_pages");

  for (double threshold : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                           0.9, 1.0}) {
    std::string dir = BenchDir("fig4");
    std::filesystem::remove_all(dir);
    SimulatedClock clock;
    DbOptions options;
    options.dir = dir;
    options.cache_pages = 512;
    options.clock = &clock;
    options.compliance.enabled = true;
    options.compliance.regret_interval_micros = 5 * kMinute;
    options.tsb_enabled = true;
    options.tsb_split_threshold = threshold;

    auto open = CompliantDB::Open(options);
    if (!open.ok()) {
      std::fprintf(stderr, "open: %s\n", open.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<CompliantDB> db(open.value());
    auto table = db->CreateTable("relation");
    if (!table.ok()) return 1;
    uint32_t tid = table.value();
    tpcc::TpccRandom rng(99);

    auto put = [&](uint64_t k, int round) -> Status {
      auto txn = db->Begin();
      CDB_RETURN_IF_ERROR(txn.status());
      char key[24];
      std::snprintf(key, sizeof(key), "key%08llu",
                    static_cast<unsigned long long>(k));
      // Variable row sizes (like real relations) diversify page fill
      // factors, so the threshold sweep sees a spread of distinct-key
      // fractions instead of one cliff.
      std::string value = "r" + std::to_string(round) + "-" +
                          rng.AString(10, 90);
      CDB_RETURN_IF_ERROR(db->Put(txn.value(), tid, key, value));
      return db->Commit(txn.value());
    };

    // Initial load: every key once.
    for (uint64_t k = 0; k < keys; ++k) {
      if (!put(k, 0).ok()) return 1;
    }
    // Updates: skewed (NURand over keys — STOCK) or at-most-once uniform
    // in shuffled order (ORDER_LINE: deliveries lag orders, so a page's
    // updates arrive spread over time, already commit-stamped).
    std::vector<uint64_t> uniform_order(keys);
    for (uint64_t k = 0; k < keys; ++k) uniform_order[k] = k;
    for (uint64_t k = keys; k > 1; --k) {
      std::swap(uniform_order[k - 1], uniform_order[rng.raw()->Uniform(k)]);
    }
    for (uint64_t u = 0; u < updates; ++u) {
      uint64_t k;
      if (shape.skewed) {
        k = rng.ItemId(static_cast<uint32_t>(keys)) - 1;
      } else {
        if (u >= keys) break;  // at most one update per key
        k = uniform_order[u];
      }
      if (!put(k, 1 + static_cast<int>(u / keys)).ok()) return 1;
      clock.AdvanceMicros(kMinute / 100);
    }
    if (!db->FlushAll().ok()) return 1;

    auto stats = db->tree(tid)->CountPages();
    if (!stats.ok()) return 1;
    std::printf("%10.1f %12zu %15llu\n", threshold,
                stats.value().leaf_pages,
                static_cast<unsigned long long>(
                    db->historical()->page_count()));
    if (!db->Close().ok()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = StripMetricsJsonFlag(&argc, argv, "fig4_tsb");
  Timer run_timer;
  uint64_t keys = ArgOr(argc, argv, 1, 2000);
  uint64_t updates = ArgOr(argc, argv, 2, 8000);

  // STOCK in the paper: 400K updates on 100K tuples, heavily skewed.
  Shape stock{"(a) STOCK-shaped (skewed updates)", true};
  // ORDER_LINE: 118K updates on 100K tuples, each tuple at most once.
  Shape order_line{"(b) ORDER_LINE-shaped (uniform, <=1 update/key)", false};

  int rc = RunShape(stock, keys, updates);
  if (rc != 0) return rc;
  rc = RunShape(order_line, keys, keys);  // at-most-once => updates = keys
  if (rc != 0) return rc;

  std::printf("\nExpected shape: STOCK migrates pages even at threshold 0; "
              "ORDER_LINE migrates none below 0.5 and blows up historic "
              "pages at high thresholds.\n");
  Status ms = WriteMetricsJson(metrics_path, "fig4_tsb", run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
