// Ablations of the design decisions DESIGN.md calls out:
//  1. Page-image cache on/off (§IV-A): without the cache the logger
//     re-reads the old page image from the storage server on every write.
//  2. Regret-interval sweep: shorter intervals force dirty pages more
//     often (more I/O, tighter security window).
//  3. Completeness check: incremental ADD_HASH vs the sort-merge baseline
//     (§IV-A's O(|L| log |L|) variant).
//
//   ./bench_ablation [txns]

#include "audit/auditor.h"
#include "bench_util.h"

using namespace complydb;
using namespace complydb::bench;

int main(int argc, char** argv) {
  std::string metrics_path = StripMetricsJsonFlag(&argc, argv, "ablation");
  Timer run_timer;
  uint64_t txns = ArgOr(argc, argv, 1, 1200);

  // ---- 1. page-image cache --------------------------------------------
  std::printf("=== Ablation 1: logger page-image cache (§IV-A) ===\n");
  std::printf("%-14s %10s %12s %12s\n", "image_cache", "run_s", "disk_reads",
              "disk_writes");
  for (bool cache_images : {true, false}) {
    std::string dir = BenchDir("ablation");
    std::filesystem::remove_all(dir);
    SimulatedClock clock;
    DbOptions options;
    options.dir = dir;
    options.cache_pages = 128;  // small cache: many evictions/re-reads
    options.clock = &clock;
    options.compliance.enabled = true;
    options.compliance.regret_interval_micros = 5 * kMinute;
    options.compliance.cache_page_images = cache_images;

    auto open = CompliantDB::Open(options);
    if (!open.ok()) return 1;
    std::unique_ptr<CompliantDB> db(open.value());
    tpcc::Scale scale;
    tpcc::Workload workload(db.get(), scale, 21);
    if (!workload.CreateOrAttachTables().ok()) return 1;
    if (!workload.Load().ok()) return 1;
    db->disk()->ResetCounters();

    Timer timer;
    tpcc::MixStats stats;
    uint64_t per_txn = 5 * kMinute / 500;
    for (uint64_t i = 0; i < txns; ++i) {
      if (!workload.RunMix(1, &stats).ok()) return 1;
      clock.AdvanceMicros(per_txn);
    }
    std::printf("%-14s %10.3f %12llu %12llu\n",
                cache_images ? "on" : "off (re-read)", timer.Seconds(),
                static_cast<unsigned long long>(db->disk()->reads()),
                static_cast<unsigned long long>(db->disk()->writes()));
    if (!db->Close().ok()) return 1;
  }
  std::printf("Expected shape: cache off costs one extra storage read per "
              "page write.\n");

  // ---- 2. regret interval sweep ----------------------------------------
  std::printf("\n=== Ablation 2: regret-interval sweep ===\n");
  std::printf("%-14s %10s %12s %14s\n", "interval", "run_s", "disk_writes",
              "witnesses");
  for (uint64_t minutes : {1, 5, 30}) {
    std::string dir = BenchDir("ablation");
    std::filesystem::remove_all(dir);
    SimulatedClock clock;
    DbOptions options;
    options.dir = dir;
    options.cache_pages = 512;
    options.clock = &clock;
    options.compliance.enabled = true;
    options.compliance.regret_interval_micros = minutes * kMinute;

    auto open = CompliantDB::Open(options);
    if (!open.ok()) return 1;
    std::unique_ptr<CompliantDB> db(open.value());
    tpcc::Scale scale;
    tpcc::Workload workload(db.get(), scale, 22);
    if (!workload.CreateOrAttachTables().ok()) return 1;
    if (!workload.Load().ok()) return 1;
    db->disk()->ResetCounters();

    Timer timer;
    tpcc::MixStats stats;
    // Same simulated wall-clock per txn for every sweep point.
    uint64_t per_txn = 5 * kMinute / 500;
    for (uint64_t i = 0; i < txns; ++i) {
      if (!workload.RunMix(1, &stats).ok()) return 1;
      clock.AdvanceMicros(per_txn);
    }
    std::printf("%11llum %10.3f %12llu %14llu\n",
                static_cast<unsigned long long>(minutes), timer.Seconds(),
                static_cast<unsigned long long>(db->disk()->writes()),
                static_cast<unsigned long long>(
                    db->compliance_logger()->stats().witness_files));
    if (!db->Close().ok()) return 1;
  }
  std::printf("Expected shape: shorter intervals -> more forced writes and "
              "witness files (tighter regret window costs I/O).\n");

  // ---- 3. completeness check: ADD_HASH vs sort-merge -------------------
  std::printf("\n=== Ablation 3: audit completeness check (§IV-A) ===\n");
  {
    tpcc::Scale scale;
    auto env = TpccEnv::Create(BenchDir("ablation"), Mode::kLogConsistent,
                               512, scale, 23);
    if (!env.ok()) return 1;
    if (!env.value().RunTxns(txns).ok()) return 1;
    if (!env.value().db->FlushAll().ok()) return 1;

    std::printf("%-24s %10s %8s\n", "variant", "audit_s", "result");
    for (bool sort_merge : {false, true}) {
      AuditOptions opts;
      opts.auditor_key = "auditor-secret-key";
      opts.verify_read_hashes = false;
      opts.identity_hash_check = !sort_merge;
      opts.sort_merge_check = sort_merge;
      opts.regret_interval_micros = 5 * kMinute;
      opts.wal_path = env.value().db->wal_path();
      Auditor auditor(opts, env.value().db->worm(), env.value().db->disk());
      Timer timer;
      auto report = auditor.Audit(env.value().db->epoch(),
                                  /*write_snapshot=*/false);
      if (!report.ok()) return 1;
      std::printf("%-24s %10.3f %8s\n",
                  sort_merge ? "sort-merge (baseline)" : "ADD_HASH (paper)",
                  timer.Seconds(), report.value().ok() ? "PASS" : "FAIL");
    }
    std::printf("Expected shape: ADD_HASH avoids materializing and sorting "
                "the identity lists.\n");
  }
  Status ms = WriteMetricsJson(metrics_path, "ablation", run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
