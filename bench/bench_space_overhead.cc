// §VII(a) space overhead: size of the compliance log L, the READ-hash
// volume as a function of buffer-cache size (3 MB @ 256 MB vs 44 MB @
// 32 MB in the paper — smaller caches read more pages from disk), the
// PGNO/order-number overhead (<10% in the paper), and the live/historic
// page trade of the WORM-migration refinement.
//
//   ./bench_space_overhead [txns]

#include "bench_util.h"
#include "compliance/compliance_log.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

struct SpaceRow {
  size_t cache_pages;
  uint64_t log_bytes;
  uint64_t new_tuples;
  uint64_t read_hashes;
  uint64_t read_hash_bytes;  // 32B Hs + framing per READ record
};

Result<SpaceRow> RunOnce(size_t cache_pages, uint64_t txns) {
  tpcc::Scale scale;
  auto env = TpccEnv::Create(BenchDir("space"),
                             Mode::kLogConsistentHashOnRead, cache_pages,
                             scale, /*seed=*/5);
  if (!env.ok()) return env.status();
  CDB_RETURN_IF_ERROR(env.value().RunTxns(txns));
  CDB_RETURN_IF_ERROR(env.value().db->FlushAll());

  SpaceRow row;
  row.cache_pages = cache_pages;
  const auto& stats = env.value().db->compliance_logger()->stats();
  row.log_bytes = env.value().db->compliance_logger()->log()->size();
  row.new_tuples = stats.new_tuples;
  row.read_hashes = stats.read_hashes;
  // One READ record: ~8B frame + ~60B fixed fields + 32B hash.
  row.read_hash_bytes = stats.read_hashes * 100;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path =
      StripMetricsJsonFlag(&argc, argv, "space_overhead");
  Timer run_timer;
  uint64_t txns = ArgOr(argc, argv, 1, 1500);

  std::printf("=== §VII(a): compliance log size vs cache size (%llu TPC-C "
              "txns) ===\n",
              static_cast<unsigned long long>(txns));
  std::printf("%12s %12s %12s %12s %16s\n", "cache_pages", "L_bytes",
              "new_tuples", "read_hashes", "read_hash_bytes");

  // Large cache vs small cache: the paper's 256 MB vs 32 MB contrast.
  for (size_t cache_pages : {1024, 96}) {
    auto row = RunOnce(cache_pages, txns);
    if (!row.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   row.status().ToString().c_str());
      return 1;
    }
    std::printf("%12zu %12llu %12llu %12llu %16llu\n",
                row.value().cache_pages,
                static_cast<unsigned long long>(row.value().log_bytes),
                static_cast<unsigned long long>(row.value().new_tuples),
                static_cast<unsigned long long>(row.value().read_hashes),
                static_cast<unsigned long long>(row.value().read_hash_bytes));
  }
  std::printf("Expected shape: the small cache logs many times more READ "
              "hashes (the paper: 44 MB vs 3 MB).\n");

  // PGNO + tuple order number overhead: 4B pgno per L record + 2B order
  // number per stored tuple, relative to tuple payload (paper: <10%).
  {
    tpcc::Scale scale;
    auto env = TpccEnv::Create(BenchDir("space"), Mode::kLogConsistent, 512,
                               scale, /*seed=*/6);
    if (!env.ok()) return 1;
    if (!env.value().RunTxns(txns / 2).ok()) return 1;
    if (!env.value().db->FlushAll().ok()) return 1;
    uint64_t tuple_bytes = 0;
    uint64_t tuple_count = 0;
    auto* db = env.value().db.get();
    for (const auto& name : db->ListTables()) {
      auto tid = db->GetTable(name);
      if (!tid.ok()) continue;
      Status s = db->tree(tid.value())
                     ->ScanAll([&](PageId, const TupleData& t) {
                       tuple_bytes += EncodeTuple(t).size();
                       ++tuple_count;
                       return Status::OK();
                     });
      if (!s.ok()) return 1;
    }
    uint64_t overhead = tuple_count * (4 + 2);  // PGNO in L + order number
    std::printf("\n=== §VII(a): PGNO + order-number overhead ===\n");
    std::printf("tuples=%llu, payload=%llu bytes, pgno+seqno=%llu bytes "
                "(%.1f%%; paper: under 10%%)\n",
                static_cast<unsigned long long>(tuple_count),
                static_cast<unsigned long long>(tuple_bytes),
                static_cast<unsigned long long>(overhead),
                100.0 * static_cast<double>(overhead) /
                    static_cast<double>(tuple_bytes));
  }

  // WORM migration: live vs historic pages for a skewed (STOCK-like)
  // relation — the paper's 70K-page B+-tree becoming 18K live + 55K
  // historic at threshold 0.5.
  {
    std::printf("\n=== §VII(a): WORM migration page trade (skewed "
                "workload, threshold 0.5) ===\n");
    std::string dir = BenchDir("space");
    std::filesystem::remove_all(dir);
    SimulatedClock clock;
    DbOptions options;
    options.dir = dir;
    options.cache_pages = 512;
    options.clock = &clock;
    options.compliance.enabled = true;
    options.compliance.regret_interval_micros = 5 * kMinute;

    auto run = [&](bool tsb, size_t* live, uint64_t* hist) -> Status {
      std::filesystem::remove_all(dir);
      DbOptions o = options;
      o.tsb_enabled = tsb;
      o.tsb_split_threshold = 0.5;
      auto open = CompliantDB::Open(o);
      CDB_RETURN_IF_ERROR(open.status());
      std::unique_ptr<CompliantDB> db(open.value());
      auto table = db->CreateTable("stock");
      CDB_RETURN_IF_ERROR(table.status());
      tpcc::TpccRandom rng(7);
      for (int round = 0; round < 40; ++round) {
        for (int k = 0; k < 50; ++k) {
          auto txn = db->Begin();
          CDB_RETURN_IF_ERROR(txn.status());
          char key[16];
          std::snprintf(key, sizeof(key), "it%05d", k);
          CDB_RETURN_IF_ERROR(db->Put(txn.value(), table.value(), key,
                                      "qty" + std::to_string(round)));
          CDB_RETURN_IF_ERROR(db->Commit(txn.value()));
        }
        clock.AdvanceMicros(kMinute);
      }
      CDB_RETURN_IF_ERROR(db->FlushAll());
      auto stats = db->tree(table.value())->CountPages();
      CDB_RETURN_IF_ERROR(stats.status());
      *live = stats.value().leaf_pages;
      *hist = db->historical()->page_count();
      return db->Close();
    };

    size_t live_plain = 0, live_tsb = 0;
    uint64_t hist_plain = 0, hist_tsb = 0;
    if (!run(false, &live_plain, &hist_plain).ok()) return 1;
    if (!run(true, &live_tsb, &hist_tsb).ok()) return 1;
    std::printf("%-22s %12s %15s\n", "config", "live_pages", "historic_pages");
    std::printf("%-22s %12zu %15llu\n", "plain B+-tree", live_plain,
                static_cast<unsigned long long>(hist_plain));
    std::printf("%-22s %12zu %15llu\n", "time-split B+-tree", live_tsb,
                static_cast<unsigned long long>(hist_tsb));
    std::printf("Expected shape: far fewer live pages under TSB (audit "
                "effort shrinks by the same fraction), extra total pages "
                "on cheap WORM.\n");
  }
  Status ms = WriteMetricsJson(metrics_path, "space_overhead",
                               run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
