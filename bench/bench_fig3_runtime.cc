// Figure 3 (a)(b)(c): TPC-C total run time as a function of the number of
// transactions, for native vs log-consistent vs log-consistent +
// hash-page-on-read, under three cache/database-size regimes.
//
// Paper shapes to reproduce: log-consistent ≈ +10%, +hash-on-read ≈ +20%
// in the disk-resident configs; the memory-resident config (c) shows the
// largest relative overhead past the knee, bounded around ~30%.
//
//   ./bench_fig3_runtime [total_txns] [step]
//
// With --commit-path the binary instead runs the commit-latency A/B sweep:
// the same NewOrder stream against synchronous compliance shipping (one
// WORM fflush per hook) and the asynchronous group-commit shipper, and
// writes BENCH_commit_path.json with both db.commit_us histograms. The
// sync block is the stored baseline (bench/baselines/
// BENCH_commit_path.sync-seed.json).
//
//   ./bench_fig3_runtime --commit-path [txns]
//
// With --read-threads the binary runs the concurrent read-path sweep: the
// TPC-C writer keeps committing on the main thread while K = 1, 2, 4
// reader threads execute read-only OrderStatus/StockLevel over snapshot
// handles. Aggregate read throughput per K lands in
// BENCH_read_scaling.json (baseline: bench/baselines/
// BENCH_read_scaling.seed.json).
//
//   ./bench_fig3_runtime --read-threads [window_ms]
//
// With --write-threads the binary runs the multi-writer commit-pipeline
// sweep: the same full-mix slot schedule (RunMixConcurrent, pure function
// of the seed) executed by N = 1, 2, 4 writer threads against the
// simulated network WORM filer, each multi-writer point A/B'd with the
// disjoint-slot scheduler on ("disjoint") and off ("turnstile").
// --cross-rate sets the cross-warehouse rate in basis points (-1 keeps
// the TPC-C spec rates): higher rates mean more multi-partition
// footprints, which fall back to exclusive admission and shrink the
// disjoint gain. Throughput scales while the compliance log stays
// byte-identical across *all* runs — the sweep verifies both and writes
// BENCH_write_scaling.json (baseline: bench/baselines/
// BENCH_write_scaling.seed.json).
//
//   ./bench_fig3_runtime --write-threads [slots] [--cross-rate bp]

#include <atomic>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "compliance/compliance_log.h"
#include "obs/trace_export.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

struct Config {
  const char* label;
  uint32_t warehouses;
  size_t cache_pages;
  uint64_t io_latency_micros;  // models the paper's NFS storage server
};

int RunConfig(const Config& config, uint64_t total, uint64_t step) {
  std::printf("\n=== Fig 3 config: %s (warehouses=%u, cache=%zu pages) ===\n",
              config.label, config.warehouses, config.cache_pages);
  std::printf("%10s %14s %18s %26s %9s %9s\n", "txns", "native_s",
              "log_consistent_s", "log_consistent+hashread_s", "ovh_lc%",
              "ovh_hr%");

  tpcc::Scale scale;
  scale.warehouses = config.warehouses;

  std::vector<std::vector<double>> series;  // per mode: cumulative seconds
  for (Mode mode : {Mode::kNative, Mode::kLogConsistent,
                    Mode::kLogConsistentHashOnRead}) {
    auto env = TpccEnv::Create(BenchDir("fig3"), mode, config.cache_pages,
                               scale, /*seed=*/1234, /*tsb=*/false,
                               /*tsb_threshold=*/0.5,
                               config.io_latency_micros);
    if (!env.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   env.status().ToString().c_str());
      return 1;
    }
    std::vector<double> cumulative;
    Timer timer;
    for (uint64_t done = 0; done < total; done += step) {
      Status s = env.value().RunTxns(step);
      if (!s.ok()) {
        std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
        return 1;
      }
      cumulative.push_back(timer.Seconds());
    }
    series.push_back(std::move(cumulative));
  }

  for (size_t i = 0; i < series[0].size(); ++i) {
    double native = series[0][i];
    double lc = series[1][i];
    double hr = series[2][i];
    std::printf("%10llu %14.3f %18.3f %26.3f %8.1f%% %8.1f%%\n",
                static_cast<unsigned long long>((i + 1) *
                                                static_cast<size_t>(step)),
                native, lc, hr, 100.0 * (lc - native) / native,
                100.0 * (hr - native) / native);
  }
  return 0;
}

struct CommitPathResult {
  double elapsed_seconds = 0;
  uint64_t commits = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  uint64_t worm_flushes = 0;
  // Critical-path decomposition (db.commit_critical_path.*), summed over
  // all commits. foreground is defined as the residual, so the four
  // segments sum to the commit *span* duration by construction; the gap
  // vs sum_us (the db.commit_us timer) is the timer-vs-span window skew.
  uint64_t seg_foreground_us = 0;
  uint64_t seg_queued_us = 0;
  uint64_t seg_drain_us = 0;
  uint64_t seg_worm_us = 0;

  uint64_t SegmentsSum() const {
    return seg_foreground_us + seg_queued_us + seg_drain_us + seg_worm_us;
  }
  double SegmentsErrPct() const {
    if (sum_us == 0) return 0;
    double diff = static_cast<double>(SegmentsSum()) -
                  static_cast<double>(sum_us);
    return 100.0 * diff / static_cast<double>(sum_us);
  }
};

int RunCommitPath(bool async, uint64_t txns, CommitPathResult* out) {
  tpcc::Scale scale;
  scale.warehouses = 1;
  // Hash-page-on-read (§V): every cache-miss read appends a READ_HASH
  // record. Sync shipping pays one WORM fflush per record; the async
  // shipper defers them to the next barrier, so the A/B isolates exactly
  // the flush traffic group commit removes. The 100 us flush latency
  // models the round trip to the paper's network WORM filer (same class
  // of cost as the 120 us page-I/O latency in the Fig. 3 configs); on
  // local storage an fflush is nearly free and there is nothing for
  // group commit to amortize. The 10 ms group-commit window is tuned to
  // that round trip: commits arrive far more often than the window
  // expires, so every drain is an inline barrier steal and the shipper
  // never holds the store mid-flush when a commit lands.
  auto env = TpccEnv::Create(BenchDir("commit_path"),
                             Mode::kLogConsistentHashOnRead,
                             /*cache_pages=*/192, scale, /*seed=*/1234,
                             /*tsb=*/false, /*tsb_threshold=*/0.5,
                             /*io_latency_micros=*/0, async,
                             /*worm_flush_latency_micros=*/100,
                             /*group_commit_window_micros=*/10000);
  if (!env.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env.status().ToString().c_str());
    return 1;
  }
  if (!env.value().Warmup(200).ok()) return 1;

  // NewOrder-only: the heaviest writer of the mix, so its commit path
  // (WAL flush + compliance STAMP + WORM flush) dominates the histogram.
  Timer timer;
  uint64_t per_txn = 5 * kMinute / 500;
  for (uint64_t i = 0; i < txns; ++i) {
    bool committed = false;
    Status s = env.value().workload->NewOrder(&committed);
    if (!s.ok()) {
      std::fprintf(stderr, "NewOrder failed: %s\n", s.ToString().c_str());
      return 1;
    }
    env.value().clock->AdvanceMicros(per_txn);
  }
  out->elapsed_seconds = timer.Seconds();

  auto snapshot = obs::MetricsRegistry::Global().TakeSnapshot();
  for (const auto& h : snapshot.histograms) {
    if (h.name == "db.commit_us") {
      out->commits = h.count;
      out->sum_us = h.sum_us;
      out->max_us = h.max_us;
      out->p50 = h.p50;
      out->p95 = h.p95;
      out->p99 = h.p99;
    } else if (h.name == "db.commit_critical_path.foreground_us") {
      out->seg_foreground_us = h.sum_us;
    } else if (h.name == "db.commit_critical_path.queued_us") {
      out->seg_queued_us = h.sum_us;
    } else if (h.name == "db.commit_critical_path.drain_us") {
      out->seg_drain_us = h.sum_us;
    } else if (h.name == "db.commit_critical_path.worm_us") {
      out->seg_worm_us = h.sum_us;
    }
  }
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "worm.flushes") out->worm_flushes = value;
  }
  if (::getenv("COMMIT_PATH_DEBUG") != nullptr) {
    for (const auto& h : snapshot.histograms) {
      if (h.count == 0) continue;
      std::printf("  [hist] %-32s n=%-7llu p50=%-9.1f p95=%-9.1f p99=%-10.1f max=%llu\n",
                  h.name.c_str(), (unsigned long long)h.count, h.p50, h.p95,
                  h.p99, (unsigned long long)h.max_us);
    }
    for (const auto& [name, value] : snapshot.counters) {
      if (value > 0) std::printf("  [ctr] %-33s %llu\n", name.c_str(),
                                 (unsigned long long)value);
    }
  }
  return 0;
}

std::string CommitPathJson(const char* label, const CommitPathResult& r) {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"elapsed_seconds\":%.6f,\"commits\":%llu,"
                "\"sum_us\":%llu,\"max_us\":%llu,\"p50_us\":%.1f,"
                "\"p95_us\":%.1f,\"p99_us\":%.1f,\"worm_flushes\":%llu,"
                "\"segments\":{\"foreground_us\":%llu,\"queued_us\":%llu,"
                "\"drain_us\":%llu,\"worm_us\":%llu,\"sum_us\":%llu,"
                "\"vs_commit_us_err_pct\":%.2f}}",
                label, r.elapsed_seconds,
                static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.sum_us),
                static_cast<unsigned long long>(r.max_us), r.p50, r.p95,
                r.p99, static_cast<unsigned long long>(r.worm_flushes),
                static_cast<unsigned long long>(r.seg_foreground_us),
                static_cast<unsigned long long>(r.seg_queued_us),
                static_cast<unsigned long long>(r.seg_drain_us),
                static_cast<unsigned long long>(r.seg_worm_us),
                static_cast<unsigned long long>(r.SegmentsSum()),
                r.SegmentsErrPct());
  return buf;
}

void PrintSegments(const char* label, const CommitPathResult& r) {
  std::printf("%8s %14llu %12llu %12llu %12llu %14llu %9.2f%%\n", label,
              static_cast<unsigned long long>(r.seg_foreground_us),
              static_cast<unsigned long long>(r.seg_queued_us),
              static_cast<unsigned long long>(r.seg_drain_us),
              static_cast<unsigned long long>(r.seg_worm_us),
              static_cast<unsigned long long>(r.SegmentsSum()),
              r.SegmentsErrPct());
}

int RunCommitPathSweep(uint64_t txns, const std::string& trace_path) {
  // The env override would force async for both arms of the A/B.
  ::unsetenv("COMPLYDB_COMPLIANCE_ASYNC");
  std::printf("=== commit path: sync vs async shipping (%llu NewOrder) ===\n",
              static_cast<unsigned long long>(txns));

  CommitPathResult sync_r, async_r;
  if (RunCommitPath(/*async=*/false, txns, &sync_r) != 0) return 1;
  if (RunCommitPath(/*async=*/true, txns, &async_r) != 0) return 1;

  // The async arm ran last, so the span/trace rings still hold its
  // measured region (Warmup resets both before each arm). Export it
  // before anything else touches the rings.
  if (!trace_path.empty()) {
    Status ts = obs::WriteChromeTraceFile(trace_path);
    if (!ts.ok()) {
      std::fprintf(stderr, "%s\n", ts.ToString().c_str());
      return 1;
    }
    std::printf("trace artifact: %s (async arm, chrome://tracing)\n",
                trace_path.c_str());
  }

  std::printf("%8s %10s %10s %10s %10s %12s\n", "mode", "p50_us", "p95_us",
              "p99_us", "max_us", "worm_flushes");
  std::printf("%8s %10.1f %10.1f %10.1f %10llu %12llu\n", "sync", sync_r.p50,
              sync_r.p95, sync_r.p99,
              static_cast<unsigned long long>(sync_r.max_us),
              static_cast<unsigned long long>(sync_r.worm_flushes));
  std::printf("%8s %10.1f %10.1f %10.1f %10llu %12llu\n", "async",
              async_r.p50, async_r.p95, async_r.p99,
              static_cast<unsigned long long>(async_r.max_us),
              static_cast<unsigned long long>(async_r.worm_flushes));
  double p95_improvement =
      sync_r.p95 > 0 ? 100.0 * (sync_r.p95 - async_r.p95) / sync_r.p95 : 0;
  std::printf("p95 improvement: %.1f%%\n", p95_improvement);

  std::printf("\ncritical-path decomposition (sum over commits, micros):\n");
  std::printf("%8s %14s %12s %12s %12s %14s %10s\n", "mode", "foreground",
              "queued", "drain", "worm_flush", "segments_sum", "vs_total");
  PrintSegments("sync", sync_r);
  PrintSegments("async", async_r);

  std::string json = "{\"bench\":\"commit_path\",\"txns\":" +
                     std::to_string(txns) + "," +
                     CommitPathJson("sync", sync_r) + "," +
                     CommitPathJson("async", async_r) +
                     ",\"p95_improvement_pct\":" +
                     std::to_string(p95_improvement) + "}\n";
  std::FILE* f = std::fopen("BENCH_commit_path.json", "w");
  if (f == nullptr) return 1;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("metrics artifact: BENCH_commit_path.json\n");
  return 0;
}

struct ReadScalingResult {
  uint32_t read_threads = 0;
  uint64_t reads = 0;
  double elapsed_seconds = 0;
  double reads_per_sec = 0;
  uint64_t writer_txns = 0;
  uint64_t latch_waits = 0;
};

int RunReadScalingPoint(uint32_t readers, uint64_t window_ms,
                        ReadScalingResult* out) {
  tpcc::Scale scale;
  scale.warehouses = 2;
  // The Fig. 3 disk-resident regime: the database outgrows the cache, so
  // most reads miss and pay the simulated 150 us storage round trip. The
  // sharded cache is what lets K readers keep K of those round trips in
  // flight at once — that overlap, not CPU parallelism, is the speedup
  // being measured (CI machines may have a single core).
  auto env = TpccEnv::Create(BenchDir("read_scaling"), Mode::kLogConsistent,
                             /*cache_pages=*/160, scale, /*seed=*/1234,
                             /*tsb=*/false, /*tsb_threshold=*/0.5,
                             /*io_latency_micros=*/150);
  if (!env.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env.status().ToString().c_str());
    return 1;
  }
  if (!env.value().Warmup(200).ok()) return 1;

  CompliantDB* db = env.value().db.get();
  tpcc::Workload* workload = env.value().workload.get();
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> total_reads{0};

  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (uint32_t t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      tpcc::TpccRandom rng(4321 + t);  // per-thread rng: Workload's is not
                                       // thread-safe
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = db->BeginSnapshot();
        if (!snap.ok()) {
          failed.store(true);
          break;
        }
        std::unique_ptr<SnapshotReader> reader(snap.value());
        Status s = (local % 2 == 0) ? workload->OrderStatusRO(*reader, &rng)
                                    : workload->StockLevelRO(*reader, &rng);
        if (!s.ok()) {
          std::fprintf(stderr, "reader %u failed: %s\n", t,
                       s.ToString().c_str());
          failed.store(true);
          break;
        }
        ++local;
      }
      total_reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // The single writer keeps the standard mix running underneath the
  // readers for the whole window.
  Timer timer;
  uint64_t writer_txns = 0;
  uint64_t per_txn = 5 * kMinute / 500;
  tpcc::MixStats stats;
  while (timer.Seconds() * 1000 < static_cast<double>(window_ms) &&
         !failed.load(std::memory_order_relaxed)) {
    Status s = workload->RunMix(1, &stats);
    if (!s.ok()) {
      std::fprintf(stderr, "writer failed: %s\n", s.ToString().c_str());
      failed.store(true);
      break;
    }
    env.value().clock->AdvanceMicros(per_txn);
    ++writer_txns;
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  if (failed.load()) return 1;

  out->read_threads = readers;
  out->reads = total_reads.load();
  out->elapsed_seconds = timer.Seconds();
  out->reads_per_sec = out->reads / out->elapsed_seconds;
  out->writer_txns = writer_txns;
  auto snapshot = obs::MetricsRegistry::Global().TakeSnapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "storage.cache.latch_waits") out->latch_waits = value;
  }
  return 0;
}

int RunReadScalingSweep(uint64_t window_ms) {
  std::printf("=== read scaling: K snapshot readers + 1 writer "
              "(%llu ms window) ===\n",
              static_cast<unsigned long long>(window_ms));
  std::printf("%12s %10s %12s %14s %12s %12s\n", "read_threads", "reads",
              "reads_per_s", "writer_txns", "latch_waits", "speedup");

  std::vector<ReadScalingResult> sweep;
  for (uint32_t k : {1u, 2u, 4u}) {
    ReadScalingResult r;
    if (RunReadScalingPoint(k, window_ms, &r) != 0) return 1;
    double speedup =
        sweep.empty() ? 1.0 : r.reads_per_sec / sweep.front().reads_per_sec;
    std::printf("%12u %10llu %12.1f %14llu %12llu %11.2fx\n", r.read_threads,
                static_cast<unsigned long long>(r.reads), r.reads_per_sec,
                static_cast<unsigned long long>(r.writer_txns),
                static_cast<unsigned long long>(r.latch_waits), speedup);
    sweep.push_back(r);
  }

  double speedup_4v1 = sweep.back().reads_per_sec / sweep.front().reads_per_sec;
  std::printf("aggregate read throughput at 4 threads: %.2fx of 1 thread\n",
              speedup_4v1);

  std::string json = "{\"bench\":\"read_scaling\",\"window_ms\":" +
                     std::to_string(window_ms) +
                     ",\"warehouses\":2,\"cache_pages\":160,"
                     "\"io_latency_micros\":150,\"sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const ReadScalingResult& r = sweep[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"read_threads\":%u,\"reads\":%llu,"
                  "\"reads_per_sec\":%.1f,\"writer_txns\":%llu,"
                  "\"latch_waits\":%llu}",
                  i == 0 ? "" : ",", r.read_threads,
                  static_cast<unsigned long long>(r.reads), r.reads_per_sec,
                  static_cast<unsigned long long>(r.writer_txns),
                  static_cast<unsigned long long>(r.latch_waits));
    json += buf;
  }
  json += "],\"speedup_4v1\":" + std::to_string(speedup_4v1) + "}\n";
  std::FILE* f = std::fopen("BENCH_read_scaling.json", "w");
  if (f == nullptr) return 1;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("metrics artifact: BENCH_read_scaling.json\n");
  return 0;
}

struct WriteScalingResult {
  uint32_t write_threads = 0;
  const char* mode = "serial";  // serial | turnstile | disjoint
  double elapsed_seconds = 0;
  uint64_t commits = 0;
  double commits_per_sec = 0;
  uint64_t epochs = 0;
  double sequence_p95_us = 0;
  double epoch_flush_p95_us = 0;
  uint64_t latch_acquires = 0;
  uint64_t latch_waits = 0;
  uint64_t worm_flushes = 0;
  uint64_t rollbacks = 0;
  uint64_t admitted_concurrent = 0;
  uint64_t serialized = 0;
  uint64_t footprint_fallbacks = 0;
  uint64_t conflict_waits = 0;
  size_t log_bytes = 0;
  bool log_identical = true;
  bool audit_ok = false;
  std::string log_content;  // compared across points, not serialized
};

int RunWriteScalingPoint(uint32_t write_threads, bool scheduler_on,
                         uint64_t slots, int64_t cross_bp,
                         WriteScalingResult* out) {
  tpcc::Scale scale;
  scale.warehouses = 8;
  // The disjoint-scheduler regime: eight warehouses give concurrent
  // slots disjoint footprints to declare, the 192-page cache keeps the
  // database disk-resident, and the asymmetric I/O profile (500 us per
  // page *read*, free writes) puts the cost where the scheduler can
  // overlap it — execute-phase reads. Writes replay serially inside the
  // turnstile either way, so pricing them would only add a fixed serial
  // term to every arm. The 0.5 ms WORM flush and 10 ms group-commit window
  // keep the epoch barrier the other amortized cost, as in the original
  // pipeline sweep. --cross-rate (basis points of cross-warehouse
  // NewOrder items / remote Payments) dials footprint fallbacks from
  // none (0) to every-slot (10000): fallback slots admit exclusively, so
  // the A/B gain decays toward 1.0 as the rate rises.
  auto env = TpccEnv::Create(
      BenchDir("write_scaling"), Mode::kLogConsistent,
      /*cache_pages=*/192, scale, /*seed=*/1234,
      /*tsb=*/false, /*tsb_threshold=*/0.5,
      /*io_latency_micros=*/0, /*async_shipping=*/true,
      /*worm_flush_latency_micros=*/500,
      /*group_commit_window_micros=*/10000, write_threads,
      [scheduler_on](DbOptions* options) {
        options->io_read_latency_micros = 500;
        options->slot_scheduler = scheduler_on;
      });
  if (!env.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 env.status().ToString().c_str());
    return 1;
  }
  if (cross_bp >= 0) {
    env.value().workload->set_cross_rate_bp(static_cast<int>(cross_bp));
  }
  if (!env.value().Warmup(200).ok()) return 1;

  tpcc::MixStats stats;
  uint64_t per_slot = 5 * kMinute / 500;
  Timer timer;
  Status s = env.value().workload->RunMixConcurrent(
      slots, write_threads, env.value().clock.get(), per_slot, &stats);
  out->elapsed_seconds = timer.Seconds();
  if (!s.ok()) {
    std::fprintf(stderr, "mix failed: %s\n", s.ToString().c_str());
    return 1;
  }

  out->write_threads = write_threads;
  out->mode = env.value().db->scheduler_mode();
  out->rollbacks = stats.rollbacks;
  auto snapshot = obs::MetricsRegistry::Global().TakeSnapshot();
  for (const auto& h : snapshot.histograms) {
    if (h.name == "db.commit_us") {
      out->commits = h.count;
    } else if (h.name == "db.commit_critical_path.sequence_us") {
      out->sequence_p95_us = h.p95;
    } else if (h.name == "txn.epoch.flush_us") {
      out->epoch_flush_p95_us = h.p95;
    }
  }
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "txn.epoch.count") out->epochs = value;
    if (name == "txn.partition.latch_acquires") out->latch_acquires = value;
    if (name == "txn.partition.latch_waits") out->latch_waits = value;
    if (name == "worm.flushes") out->worm_flushes = value;
    if (name == "txn.scheduler.admitted_concurrent")
      out->admitted_concurrent = value;
    if (name == "txn.scheduler.serialized") out->serialized = value;
    if (name == "txn.scheduler.footprint_fallbacks")
      out->footprint_fallbacks = value;
    if (name == "txn.scheduler.conflict_waits") out->conflict_waits = value;
  }
  if (::getenv("WRITE_SCALING_DEBUG") != nullptr) {
    for (const auto& [name, value] : snapshot.counters) {
      if (value > 0) std::printf("  [ctr] %-36s %llu\n", name.c_str(),
                                 (unsigned long long)value);
    }
  }
  out->commits_per_sec =
      out->elapsed_seconds > 0 ? out->commits / out->elapsed_seconds : 0;

  // Capture L before the audit supersedes this epoch's files: the
  // byte-identity assertion is the whole point of the sequencer.
  if (!env.value().db->FlushAll().ok()) return 1;
  std::ifstream log_in(BenchDir("write_scaling") + "/worm/" + LogFileName(0),
                       std::ios::binary);
  out->log_content.assign(std::istreambuf_iterator<char>(log_in),
                          std::istreambuf_iterator<char>());
  out->log_bytes = out->log_content.size();

  auto report = env.value().db->Audit();
  out->audit_ok = report.ok() && report.value().ok();
  if (!out->audit_ok) {
    std::fprintf(stderr, "audit failed at write_threads=%u: %s\n",
                 write_threads,
                 report.ok() ? report.value().problems[0].c_str()
                             : report.status().ToString().c_str());
  }
  return 0;
}

int RunWriteScalingSweep(uint64_t slots, int64_t cross_bp) {
  std::printf("=== write scaling: N pipeline writers, full mix "
              "(%llu slots, cross-rate %lld bp) ===\n",
              static_cast<unsigned long long>(slots),
              static_cast<long long>(cross_bp));
  std::printf("%13s %10s %10s %9s %12s %8s %12s %10s %10s %8s %7s %6s\n",
              "write_threads", "mode", "elapsed_s", "commits",
              "commits_per_s", "epochs", "worm_flushes", "concurrent",
              "fallbacks", "L_bytes", "speedup", "gain");

  // Both scheduler arms at each thread count: "turnstile" is PR 6's
  // exclusive admission, "disjoint" adds concurrent execution for
  // disjoint-footprint slots. At one writer there is no pipeline, so the
  // serial point serves as the shared baseline.
  std::vector<WriteScalingResult> sweep;
  bool all_identical = true;
  bool all_audits_ok = true;
  double gain_4t = 0;
  double baseline_cps = 0;
  for (uint32_t n : {1u, 2u, 4u}) {
    double turnstile_cps = 0;
    for (bool scheduler_on : {false, true}) {
      if (n == 1 && !scheduler_on) continue;  // no pipeline to A/B
      WriteScalingResult r;
      if (RunWriteScalingPoint(n, scheduler_on, slots, cross_bp, &r) != 0) {
        return 1;
      }
      if (!sweep.empty()) {
        r.log_identical = r.log_content == sweep.front().log_content;
        all_identical = all_identical && r.log_identical;
      }
      all_audits_ok = all_audits_ok && r.audit_ok;
      if (baseline_cps == 0) baseline_cps = r.commits_per_sec;
      if (!scheduler_on) turnstile_cps = r.commits_per_sec;
      double speedup = r.commits_per_sec / baseline_cps;
      double gain =
          turnstile_cps > 0 && scheduler_on && n > 1
              ? r.commits_per_sec / turnstile_cps
              : 0;
      if (n == 4 && scheduler_on) gain_4t = gain;
      std::printf(
          "%13u %10s %10.3f %9llu %12.1f %8llu %12llu %10llu %10llu %8zu "
          "%6.2fx %5.2fx\n",
          r.write_threads, r.mode, r.elapsed_seconds,
          static_cast<unsigned long long>(r.commits), r.commits_per_sec,
          static_cast<unsigned long long>(r.epochs),
          static_cast<unsigned long long>(r.worm_flushes),
          static_cast<unsigned long long>(r.admitted_concurrent),
          static_cast<unsigned long long>(r.footprint_fallbacks),
          r.log_bytes, speedup, gain);
      sweep.push_back(std::move(r));
    }
  }

  double speedup_4v1 =
      sweep.back().commits_per_sec / sweep.front().commits_per_sec;
  std::printf("commit throughput at 4 writers (disjoint): %.2fx of 1 "
              "writer; %.2fx of 4-writer turnstile\n",
              speedup_4v1, gain_4t);
  std::printf("compliance log byte-identical across all runs: %s\n",
              all_identical ? "yes" : "NO — DIVERGED");

  std::string json = "{\"bench\":\"write_scaling\",\"slots\":" +
                     std::to_string(slots) +
                     ",\"cross_rate_bp\":" + std::to_string(cross_bp) +
                     ",\"warehouses\":8,\"cache_pages\":192,"
                     "\"io_read_latency_micros\":500,"
                     "\"worm_flush_latency_micros\":500,"
                     "\"group_commit_window_micros\":10000,\"sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const WriteScalingResult& r = sweep[i];
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"write_threads\":%u,\"mode\":\"%s\","
                  "\"elapsed_seconds\":%.6f,"
                  "\"commits\":%llu,\"commits_per_sec\":%.1f,"
                  "\"epochs\":%llu,\"sequence_p95_us\":%.1f,"
                  "\"epoch_flush_p95_us\":%.1f,\"latch_acquires\":%llu,"
                  "\"latch_waits\":%llu,\"worm_flushes\":%llu,"
                  "\"rollbacks\":%llu,\"admitted_concurrent\":%llu,"
                  "\"serialized\":%llu,\"footprint_fallbacks\":%llu,"
                  "\"conflict_waits\":%llu,\"log_bytes\":%zu,"
                  "\"log_identical\":%s,\"audit_ok\":%s}",
                  i == 0 ? "" : ",", r.write_threads, r.mode,
                  r.elapsed_seconds,
                  static_cast<unsigned long long>(r.commits),
                  r.commits_per_sec,
                  static_cast<unsigned long long>(r.epochs),
                  r.sequence_p95_us, r.epoch_flush_p95_us,
                  static_cast<unsigned long long>(r.latch_acquires),
                  static_cast<unsigned long long>(r.latch_waits),
                  static_cast<unsigned long long>(r.worm_flushes),
                  static_cast<unsigned long long>(r.rollbacks),
                  static_cast<unsigned long long>(r.admitted_concurrent),
                  static_cast<unsigned long long>(r.serialized),
                  static_cast<unsigned long long>(r.footprint_fallbacks),
                  static_cast<unsigned long long>(r.conflict_waits),
                  r.log_bytes, r.log_identical ? "true" : "false",
                  r.audit_ok ? "true" : "false");
    json += buf;
  }
  json += "],\"speedup_4v1\":" + std::to_string(speedup_4v1) +
          ",\"gain_4t_disjoint_vs_turnstile\":" + std::to_string(gain_4t) +
          ",\"log_identical_all\":" + (all_identical ? "true" : "false") +
          ",\"audits_ok\":" + (all_audits_ok ? "true" : "false") + "}\n";
  std::FILE* f = std::fopen("BENCH_write_scaling.json", "w");
  if (f == nullptr) return 1;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("metrics artifact: BENCH_write_scaling.json\n");
  return (all_identical && all_audits_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--read-threads") == 0) {
    return RunReadScalingSweep(ArgOr(argc, argv, 2, 1500));
  }
  if (argc > 1 && std::strcmp(argv[1], "--write-threads") == 0) {
    // The env overrides would skew individual sweep points.
    ::unsetenv("COMPLYDB_WRITE_THREADS");
    ::unsetenv("COMPLYDB_COMPLIANCE_ASYNC");
    ::unsetenv("COMPLYDB_SLOT_SCHEDULER");
    int64_t cross_bp = StripInt64Flag(&argc, argv, "--cross-rate", -1);
    return RunWriteScalingSweep(ArgOr(argc, argv, 2, 1500), cross_bp);
  }
  if (argc > 1 && std::strcmp(argv[1], "--commit-path") == 0) {
    std::string trace_path = StripTraceJsonFlag(&argc, argv, "commit_path");
    // 2000 NewOrders grow the database past the 192-page cache, the
    // disk-resident regime where lazy-timestamping reads miss and the
    // sync path pays a WORM round trip per READ_HASH inside commit.
    return RunCommitPathSweep(ArgOr(argc, argv, 2, 2000), trace_path);
  }
  std::string metrics_path = StripMetricsJsonFlag(&argc, argv, "fig3_runtime");
  Timer run_timer;
  uint64_t total = ArgOr(argc, argv, 1, 2000);
  uint64_t step = ArgOr(argc, argv, 2, 500);

  // (a) multi-warehouse, medium cache: the paper's 10 WH / 256 MB point.
  // (b) same DB, large cache (512 MB analogue): smaller overhead.
  // (c) 1 WH, cache >= DB (memory-resident): overhead dominated by the
  //     regret-interval dirty-page flushing.
  // 120 us per page I/O approximates the paper's NFS round trip; config
  // (c) keeps it too — its I/O happens only at regret-interval flushes,
  // which is exactly the effect Fig. 3(c) isolates.
  Config configs[] = {
      {"(a) multi-WH, medium cache", 2, 192, 120},
      {"(b) multi-WH, large cache", 2, 384, 120},
      {"(c) 1 WH, memory resident", 1, 4096, 120},
  };
  for (const Config& config : configs) {
    int rc = RunConfig(config, total, step);
    if (rc != 0) return rc;
  }
  std::printf("\nExpected shape: (b) overhead < (a) overhead; (c) largest "
              "relative slowdown, bounded (~30%% in the paper).\n");
  Status ms = WriteMetricsJson(metrics_path, "fig3_runtime",
                               run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
