// Figure 3 (a)(b)(c): TPC-C total run time as a function of the number of
// transactions, for native vs log-consistent vs log-consistent +
// hash-page-on-read, under three cache/database-size regimes.
//
// Paper shapes to reproduce: log-consistent ≈ +10%, +hash-on-read ≈ +20%
// in the disk-resident configs; the memory-resident config (c) shows the
// largest relative overhead past the knee, bounded around ~30%.
//
//   ./bench_fig3_runtime [total_txns] [step]

#include <vector>

#include "bench_util.h"

using namespace complydb;
using namespace complydb::bench;

namespace {

struct Config {
  const char* label;
  uint32_t warehouses;
  size_t cache_pages;
  uint64_t io_latency_micros;  // models the paper's NFS storage server
};

int RunConfig(const Config& config, uint64_t total, uint64_t step) {
  std::printf("\n=== Fig 3 config: %s (warehouses=%u, cache=%zu pages) ===\n",
              config.label, config.warehouses, config.cache_pages);
  std::printf("%10s %14s %18s %26s %9s %9s\n", "txns", "native_s",
              "log_consistent_s", "log_consistent+hashread_s", "ovh_lc%",
              "ovh_hr%");

  tpcc::Scale scale;
  scale.warehouses = config.warehouses;

  std::vector<std::vector<double>> series;  // per mode: cumulative seconds
  for (Mode mode : {Mode::kNative, Mode::kLogConsistent,
                    Mode::kLogConsistentHashOnRead}) {
    auto env = TpccEnv::Create(BenchDir("fig3"), mode, config.cache_pages,
                               scale, /*seed=*/1234, /*tsb=*/false,
                               /*tsb_threshold=*/0.5,
                               config.io_latency_micros);
    if (!env.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   env.status().ToString().c_str());
      return 1;
    }
    std::vector<double> cumulative;
    Timer timer;
    for (uint64_t done = 0; done < total; done += step) {
      Status s = env.value().RunTxns(step);
      if (!s.ok()) {
        std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
        return 1;
      }
      cumulative.push_back(timer.Seconds());
    }
    series.push_back(std::move(cumulative));
  }

  for (size_t i = 0; i < series[0].size(); ++i) {
    double native = series[0][i];
    double lc = series[1][i];
    double hr = series[2][i];
    std::printf("%10llu %14.3f %18.3f %26.3f %8.1f%% %8.1f%%\n",
                static_cast<unsigned long long>((i + 1) *
                                                static_cast<size_t>(step)),
                native, lc, hr, 100.0 * (lc - native) / native,
                100.0 * (hr - native) / native);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = StripMetricsJsonFlag(&argc, argv, "fig3_runtime");
  Timer run_timer;
  uint64_t total = ArgOr(argc, argv, 1, 2000);
  uint64_t step = ArgOr(argc, argv, 2, 500);

  // (a) multi-warehouse, medium cache: the paper's 10 WH / 256 MB point.
  // (b) same DB, large cache (512 MB analogue): smaller overhead.
  // (c) 1 WH, cache >= DB (memory-resident): overhead dominated by the
  //     regret-interval dirty-page flushing.
  // 120 us per page I/O approximates the paper's NFS round trip; config
  // (c) keeps it too — its I/O happens only at regret-interval flushes,
  // which is exactly the effect Fig. 3(c) isolates.
  Config configs[] = {
      {"(a) multi-WH, medium cache", 2, 192, 120},
      {"(b) multi-WH, large cache", 2, 384, 120},
      {"(c) 1 WH, memory resident", 1, 4096, 120},
  };
  for (const Config& config : configs) {
    int rc = RunConfig(config, total, step);
    if (rc != 0) return rc;
  }
  std::printf("\nExpected shape: (b) overhead < (a) overhead; (c) largest "
              "relative slowdown, bounded (~30%% in the paper).\n");
  Status ms = WriteMetricsJson(metrics_path, "fig3_runtime",
                               run_timer.Seconds());
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.ToString().c_str());
    return 1;
  }
  return 0;
}
