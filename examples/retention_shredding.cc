// Retention & auditable shredding (paper §VIII): Virginia Code §42.1-82
// style — records containing social security numbers must be shredded
// when they expire, and the shredding itself must be provably legitimate.
//
//   ./build/examples/retention_shredding [workdir]

#include <cstdio>
#include <filesystem>
#include <memory>

#include "db/compliant_db.h"

using namespace complydb;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::complydb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                                 \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _s.ToString().c_str());                          \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/complydb_shredding";
  std::filesystem::remove_all(dir);
  constexpr uint64_t kDay = 24ull * 3600 * 1'000'000;
  SimulatedClock clock;

  DbOptions options;
  options.dir = dir;
  options.clock = &clock;
  options.compliance.enabled = true;
  options.compliance.regret_interval_micros = 5ull * 60 * 1'000'000;

  auto open = CompliantDB::Open(options);
  CHECK_OK(open.status());
  std::unique_ptr<CompliantDB> db(open.value());

  auto t = db->CreateTable("citizens");
  CHECK_OK(t.status());
  uint32_t citizens = t.value();

  // Policy: 30-day retention, recorded as an audited, versioned tuple.
  CHECK_OK(db->SetRetention(citizens, 30 * kDay));
  std::printf("retention policy: 30 days (itself stored as versioned, "
              "audited data)\n");

  auto put = [&](const char* key, const char* value) -> Status {
    auto txn = db->Begin();
    CDB_RETURN_IF_ERROR(txn.status());
    CDB_RETURN_IF_ERROR(db->Put(txn.value(), citizens, key, value));
    return db->Commit(txn.value());
  };

  CHECK_OK(put("citizen-1", "ssn=123-45-6789"));
  clock.AdvanceSeconds(3600);
  CHECK_OK(put("citizen-1", "ssn=redacted"));  // supersedes the SSN version
  CHECK_OK(put("citizen-2", "ssn=987-65-4321"));

  // An audit must capture a tuple before it may ever be shredded.
  auto audit1 = db->Audit();
  CHECK_OK(audit1.status());
  std::printf("audit #1: %s (tuples now snapshot-protected)\n",
              audit1.value().ok() ? "PASS" : "FAIL");

  // Too early: nothing can be vacuumed.
  auto early = db->Vacuum(citizens);
  CHECK_OK(early.status());
  std::printf("vacuum at day 0:   %llu shredded (retention not expired)\n",
              static_cast<unsigned long long>(early.value().shredded));

  // 31 days later the superseded SSN version is expired.
  CHECK_OK(db->AdvanceClock(31 * kDay));
  auto late = db->Vacuum(citizens);
  CHECK_OK(late.status());
  std::printf("vacuum at day 31:  %llu shredded (the superseded SSN "
              "version)\n",
              static_cast<unsigned long long>(late.value().shredded));

  std::vector<TupleData> history;
  CHECK_OK(db->GetHistory(citizens, "citizen-1", &history));
  std::printf("citizen-1 history: %zu version(s); latest: %s\n",
              history.size(),
              history.empty() ? "-" : history.back().value.c_str());

  // The audit verifies each SHREDDED record: the tuple is gone, its hash
  // matches the snapshot, and it truly had expired under the policy in
  // force at shred time.
  CHECK_OK(db->FlushAll());
  auto audit2 = db->Audit();
  CHECK_OK(audit2.status());
  std::printf("audit #2: %s (%llu shred(s) verified as legitimate)\n",
              audit2.value().ok() ? "PASS" : "FAIL",
              static_cast<unsigned long long>(audit2.value().shreds_verified));
  for (const auto& p : audit2.value().problems) {
    std::printf("  problem: %s\n", p.c_str());
  }
  CHECK_OK(db->Close());
  return audit2.value().ok() && late.value().shredded == 1 ? 0 : 1;
}
