// TPC-C atop the compliant DBMS: load, run the standard mix across
// regret intervals, survive a crash, and pass the audit — the paper's
// §VII evaluation pipeline end to end, at demo scale.
//
//   ./build/examples/tpcc_demo [workdir] [num_txns]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "tpcc/workload.h"

using namespace complydb;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::complydb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                                 \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _s.ToString().c_str());                          \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/complydb_tpcc";
  uint64_t num_txns = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  std::filesystem::remove_all(dir);
  SimulatedClock clock;

  DbOptions options;
  options.dir = dir;
  options.cache_pages = 512;
  options.clock = &clock;
  options.compliance.enabled = true;
  options.compliance.regret_interval_micros = 5ull * 60 * 1'000'000;

  tpcc::Scale scale;  // 1 warehouse, scaled cardinalities

  auto open = CompliantDB::Open(options);
  CHECK_OK(open.status());
  std::unique_ptr<CompliantDB> db(open.value());
  tpcc::Workload workload(db.get(), scale, /*seed=*/7);
  CHECK_OK(workload.CreateOrAttachTables());
  CHECK_OK(workload.Load());
  std::printf("loaded: %u warehouse(s), %u items, %u districts\n",
              scale.warehouses, scale.items,
              scale.districts_per_warehouse);

  tpcc::MixStats stats;
  uint64_t half = num_txns / 2;
  CHECK_OK(workload.RunMix(half, &stats));
  CHECK_OK(db->AdvanceClock(6ull * 60 * 1'000'000));  // a regret interval

  // Crash mid-run: destroy without Close. Committed work must survive.
  db.reset();
  std::printf("-- crash --\n");
  auto reopen = CompliantDB::Open(options);
  CHECK_OK(reopen.status());
  db.reset(reopen.value());
  std::printf("recovered: %zu WAL records scanned, %zu losers undone\n",
              db->recovery_report().records_scanned,
              db->recovery_report().losers_undone);

  tpcc::Workload workload2(db.get(), scale, /*seed=*/8);
  CHECK_OK(workload2.CreateOrAttachTables());
  CHECK_OK(workload2.RunMix(num_txns - half, &stats));

  std::printf("mix: %llu NewOrder (%llu rolled back), %llu Payment, "
              "%llu OrderStatus, %llu Delivery, %llu StockLevel\n",
              static_cast<unsigned long long>(stats.new_order),
              static_cast<unsigned long long>(stats.rollbacks),
              static_cast<unsigned long long>(stats.payment),
              static_cast<unsigned long long>(stats.order_status),
              static_cast<unsigned long long>(stats.delivery),
              static_cast<unsigned long long>(stats.stock_level));

  auto report = db->Audit();
  CHECK_OK(report.status());
  std::printf("audit: %s — %llu log records, %llu tuples, %llu pages "
              "(%.3fs)\n",
              report.value().ok() ? "PASS" : "FAIL",
              static_cast<unsigned long long>(report.value().log_records),
              static_cast<unsigned long long>(report.value().tuples_checked),
              static_cast<unsigned long long>(report.value().pages_checked),
              report.value().timings.total_seconds);
  for (const auto& p : report.value().problems) {
    std::printf("  problem: %s\n", p.c_str());
  }
  CHECK_OK(db->Close());
  return report.value().ok() ? 0 : 1;
}
