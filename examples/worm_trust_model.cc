// The trust anchor in isolation: what the WORM store emulation does and
// refuses to do, and why its create-time clock is what makes witness
// files and log tails meaningful evidence (§II, §IV-A).
//
//   ./build/examples/worm_trust_model [workdir]

#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/clock.h"
#include "worm/worm_store.h"

using namespace complydb;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/complydb_worm_demo";
  std::filesystem::remove_all(dir);
  constexpr uint64_t kHour = 3600ull * 1'000'000;

  SimulatedClock clock;  // the filer's tamper-resistant compliance clock
  auto open = WormStore::Open(dir, &clock);
  if (!open.ok()) {
    std::fprintf(stderr, "open: %s\n", open.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<WormStore> worm(open.value());

  std::printf("== what the store permits ==\n");
  Status s = worm->Create("audit-trail", /*retention=*/24 * kHour);
  std::printf("create 'audit-trail' (24h retention): %s\n",
              s.ToString().c_str());
  s = worm->Append("audit-trail", "record-1|");
  std::printf("append record-1:                      %s\n",
              s.ToString().c_str());
  s = worm->Append("audit-trail", "record-2|");
  std::printf("append record-2:                      %s\n",
              s.ToString().c_str());

  std::printf("\n== what it refuses (each refusal is counted) ==\n");
  s = worm->Create("audit-trail", kHour);
  std::printf("re-create over existing file:         %s\n",
              s.ToString().c_str());
  s = worm->Delete("audit-trail");
  std::printf("delete before retention expiry:       %s\n",
              s.ToString().c_str());
  std::printf("violations recorded so far:           %llu\n",
              static_cast<unsigned long long>(worm->violation_count()));

  std::printf("\n== create times are evidence ==\n");
  // A witness file's create time comes from the compliance clock; an
  // adversary cannot produce a file whose create time lies in the past.
  clock.AdvanceMicros(2 * kHour);
  (void)worm->Create("witness_001", 0);
  auto info = worm->GetInfo("witness_001");
  std::printf("witness created at t=%llu: proof the system was alive then\n",
              static_cast<unsigned long long>(
                  info.value().create_time_micros));
  std::printf("a commit record claiming a time with no nearby WORM file\n"
              "creation is a forgery — that is the auditor's liveness "
              "check.\n");

  std::printf("\n== retention lifecycle ==\n");
  clock.AdvanceMicros(23 * kHour);  // 25h since creation > 24h retention
  s = worm->Delete("audit-trail");
  std::printf("delete after retention expiry:        %s\n",
              s.ToString().c_str());
  std::printf("remaining files: %zu (witness kept: retain-forever until an "
              "audit releases it)\n",
              worm->List().size());
  return 0;
}
