// Quickstart: open a compliant database, run transactions, travel in
// time, and pass an audit.
//
//   ./build/examples/quickstart [workdir]

#include <cstdio>
#include <filesystem>
#include <memory>

#include "db/compliant_db.h"

using namespace complydb;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::complydb::Status _s = (expr);                               \
    if (!_s.ok()) {                                               \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _s.ToString().c_str());                        \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/complydb_quickstart";
  std::filesystem::remove_all(dir);

  // A simulated clock lets this demo cross regret intervals instantly.
  SimulatedClock clock;

  DbOptions options;
  options.dir = dir;
  options.clock = &clock;
  options.compliance.enabled = true;
  options.compliance.hash_on_read = true;
  options.compliance.regret_interval_micros = 5ull * 60 * 1'000'000;

  auto open = CompliantDB::Open(options);
  if (!open.ok()) {
    std::fprintf(stderr, "open failed: %s\n", open.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<CompliantDB> db(open.value());

  auto table = db->CreateTable("accounts");
  CHECK_OK(table.status());
  uint32_t accounts = table.value();

  // --- transactions -----------------------------------------------------
  auto put = [&](const char* key, const char* value) -> Status {
    auto txn = db->Begin();
    CDB_RETURN_IF_ERROR(txn.status());
    CDB_RETURN_IF_ERROR(db->Put(txn.value(), accounts, key, value));
    return db->Commit(txn.value());
  };

  CHECK_OK(put("alice", "1000"));
  uint64_t t_v1 = db->txns()->last_commit_time();
  clock.AdvanceSeconds(60);
  CHECK_OK(put("alice", "750"));  // a new *version*; history is immutable
  CHECK_OK(put("bob", "500"));

  std::string value;
  CHECK_OK(db->Get(accounts, "alice", &value));
  std::printf("alice now:              %s\n", value.c_str());

  // --- time travel ------------------------------------------------------
  CHECK_OK(db->GetAsOf(accounts, "alice", t_v1, &value));
  std::printf("alice as of t1:         %s\n", value.c_str());

  std::vector<TupleData> history;
  CHECK_OK(db->GetHistory(accounts, "alice", &history));
  std::printf("alice has %zu versions (every change is retained)\n",
              history.size());

  // --- the audit --------------------------------------------------------
  // The regret interval elapses: dirty pages are forced, tuples reach the
  // WORM compliance log.
  CHECK_OK(db->AdvanceClock(2 * options.compliance.regret_interval_micros + 1));

  auto report = db->Audit();
  CHECK_OK(report.status());
  std::printf("audit: %s (%llu records replayed, %llu tuples verified)\n",
              report.value().ok() ? "PASS" : "FAIL",
              static_cast<unsigned long long>(report.value().log_records),
              static_cast<unsigned long long>(report.value().tuples_checked));
  for (const auto& p : report.value().problems) {
    std::printf("  problem: %s\n", p.c_str());
  }
  CHECK_OK(db->Close());
  return report.value().ok() ? 0 : 1;
}
