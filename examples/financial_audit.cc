// The paper's motivating scenario (§I–§II): a CEO wants illegal asset
// shuffling scrubbed from the firm's financial database. Mala gets root,
// edits the database file directly — and the next SOX audit catches it.
//
//   ./build/examples/financial_audit [workdir]

#include <cstdio>
#include <filesystem>
#include <memory>

#include "adversary/mala.h"
#include "db/compliant_db.h"

using namespace complydb;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::complydb::Status _s = (expr);                                 \
    if (!_s.ok()) {                                                 \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _s.ToString().c_str());                          \
      return 1;                                                     \
    }                                                               \
  } while (0)

namespace {

DbOptions MakeOptions(const std::string& dir, SimulatedClock* clock) {
  DbOptions options;
  options.dir = dir;
  options.clock = clock;
  options.compliance.enabled = true;
  options.compliance.hash_on_read = true;
  options.compliance.regret_interval_micros = 5ull * 60 * 1'000'000;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/complydb_financial";
  std::filesystem::remove_all(dir);
  SimulatedClock clock;

  uint32_t ledger = 0;

  // ---- Phase 1: the firm records its transfers ------------------------
  {
    auto open = CompliantDB::Open(MakeOptions(dir, &clock));
    CHECK_OK(open.status());
    std::unique_ptr<CompliantDB> db(open.value());
    auto t = db->CreateTable("transfers");
    CHECK_OK(t.status());
    ledger = t.value();

    for (int i = 0; i < 100; ++i) {
      auto txn = db->Begin();
      CHECK_OK(txn.status());
      char key[32], value[64];
      std::snprintf(key, sizeof(key), "transfer-%05d", i);
      std::snprintf(value, sizeof(value), "amount=%d;to=%s", 1000 + i * 17,
                    i == 42 ? "offshore-shell-co" : "legitimate-vendor");
      CHECK_OK(db->Put(txn.value(), ledger, key, value));
      CHECK_OK(db->Commit(txn.value()));
    }
    CHECK_OK(db->AdvanceClock(11ull * 60 * 1'000'000));
    std::printf("phase 1: 100 transfers recorded (transfer-00042 is the "
                "one the CEO regrets)\n");
    CHECK_OK(db->Close());
  }

  // ---- Phase 2: Mala strikes ------------------------------------------
  {
    Mala mala(dir + "/data.db");
    CHECK_OK(mala.TamperTupleValue(ledger, "transfer-00042"));
    std::printf("phase 2: Mala (as root) edited transfer-00042 in the "
                "database file\n");
  }

  // ---- Phase 3: the external audit ------------------------------------
  {
    auto open = CompliantDB::Open(MakeOptions(dir, &clock));
    CHECK_OK(open.status());
    std::unique_ptr<CompliantDB> db(open.value());

    auto report = db->Audit();
    CHECK_OK(report.status());
    std::printf("phase 3: audit -> %s\n",
                report.value().ok() ? "PASS (!!)" : "TAMPERING DETECTED");
    size_t shown = 0;
    for (const auto& p : report.value().problems) {
      std::printf("  finding: %s\n", p.c_str());
      if (++shown == 3) break;
    }
    CHECK_OK(db->Close());

    // Detected tampering means presumption of guilt under current
    // regulatory interpretation (§II) — exactly the deterrent the
    // architecture exists to provide.
    return report.value().ok() ? 1 : 0;
  }
}
