// Interactive shell over a complydb directory: transactions, time travel,
// retention, holds, vacuuming, and audits from a prompt.
//
//   cdb_shell <db-dir>
//
// The shell drives a simulated clock seeded from wall time, so `advance`
// can push past regret intervals and retention periods interactively.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "db/compliant_db.h"
#include "db/snapshot_reader.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

using namespace complydb;

namespace {

constexpr char kHelp[] =
    "commands:\n"
    "  create <table>                 create a relation\n"
    "  tables                         list relations\n"
    "  put <table> <key> <value>      insert/update (one-statement txn)\n"
    "  del <table> <key>              delete (end-of-life version)\n"
    "  get <table> <key>              current value\n"
    "  history <table> <key>          full version history\n"
    "  asof <table> <key> <micros>    value as of a commit time\n"
    "  scan <table> [limit]           current rows\n"
    "  retention <table> <days>       set the retention policy\n"
    "  vacuum <table>                 shred expired versions\n"
    "  hold <table> <prefix>          place a litigation hold\n"
    "  release <table> <prefix>       release a hold\n"
    "  advance <seconds>              advance the simulated clock\n"
    "  audit [threads]                run the full compliance audit (0 = "
    "all cores)\n"
    "  audit inc [threads]            certify sealed epochs incrementally "
    "(online)\n"
    "  audit status                   certification status (epoch, root, "
    "backlog)\n"
    "  vget <table> <key>             get + verify a Merkle inclusion "
    "proof\n"
    "  stats                          engine statistics\n"
    "  metrics [prom]                 metrics registry (JSON or Prometheus)\n"
    "  trace [--type <t>] [--txn <id>] [--last n]\n"
    "                                 newest matching trace events "
    "(default 20)\n"
    "  trace export <file>            Chrome trace_event JSON (spans +\n"
    "                                 events) for chrome://tracing\n"
    "  spans [--last n]               newest closed spans (default 20)\n"
    "  help | quit\n";

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

void PrintStatus(const Status& s) {
  std::printf("%s\n", s.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cdb_shell <db-dir>\n");
    return 2;
  }
  SystemClock wall;
  SimulatedClock clock(wall.NowMicros());

  DbOptions options;
  options.dir = argv[1];
  options.clock = &clock;
  options.compliance.enabled = true;
  options.compliance.hash_on_read = true;

  auto open = CompliantDB::Open(options);
  if (!open.ok()) {
    std::fprintf(stderr, "open: %s\n", open.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<CompliantDB> db(open.value());
  std::printf("complydb shell — epoch %llu, %zu table(s). Type 'help'.\n",
              static_cast<unsigned long long>(db->epoch()),
              db->ListTables().size());

  std::string line;
  while (std::printf("cdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    auto args = Tokenize(line);
    if (args.empty()) continue;
    const std::string& cmd = args[0];

    auto table_id = [&](const std::string& name) -> Result<uint32_t> {
      return db->GetTable(name);
    };

    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      std::printf("%s", kHelp);
    } else if (cmd == "create" && args.size() == 2) {
      auto r = db->CreateTable(args[1]);
      PrintStatus(r.status());
    } else if (cmd == "tables") {
      for (const auto& name : db->ListTables()) {
        std::printf("%s\n", name.c_str());
      }
    } else if (cmd == "put" && args.size() >= 4) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      // Re-join the value (it may contain spaces).
      std::string value = line.substr(line.find(args[3], line.find(args[2]) +
                                                             args[2].size()));
      auto txn = db->Begin();
      if (!txn.ok()) { PrintStatus(txn.status()); continue; }
      Status s = db->Put(txn.value(), t.value(), args[2], value);
      if (s.ok()) s = db->Commit(txn.value());
      else (void)db->Abort(txn.value());
      PrintStatus(s);
    } else if (cmd == "del" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      auto txn = db->Begin();
      if (!txn.ok()) { PrintStatus(txn.status()); continue; }
      Status s = db->Delete(txn.value(), t.value(), args[2]);
      if (s.ok()) s = db->Commit(txn.value());
      else (void)db->Abort(txn.value());
      PrintStatus(s);
    } else if (cmd == "get" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      std::string value;
      Status s = db->Get(t.value(), args[2], &value);
      if (s.ok()) std::printf("%s\n", value.c_str());
      else PrintStatus(s);
    } else if (cmd == "history" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      std::vector<TupleData> versions;
      Status s = db->GetHistory(t.value(), args[2], &versions);
      if (!s.ok()) { PrintStatus(s); continue; }
      for (const auto& v : versions) {
        std::printf("  @%llu %s%s\n",
                    static_cast<unsigned long long>(v.start),
                    v.eol ? "(deleted)" : v.value.c_str(),
                    v.stamped ? "" : " [unstamped]");
      }
      std::printf("(%zu versions)\n", versions.size());
    } else if (cmd == "asof" && args.size() == 4) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      uint64_t at = std::strtoull(args[3].c_str(), nullptr, 10);
      std::string value;
      Status s = db->GetAsOf(t.value(), args[2], at, &value);
      if (s.ok()) std::printf("%s\n", value.c_str());
      else PrintStatus(s);
    } else if (cmd == "scan" && args.size() >= 2) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      size_t limit = args.size() >= 3
                         ? std::strtoull(args[2].c_str(), nullptr, 10)
                         : 25;
      size_t shown = 0;
      (void)db->ScanCurrent(t.value(), "", "", [&](const TupleData& row) {
        if (shown++ >= limit) return Status::Busy("stop");
        std::printf("  %s = %s\n", row.key.c_str(), row.value.c_str());
        return Status::OK();
      });
    } else if (cmd == "retention" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      uint64_t days = std::strtoull(args[2].c_str(), nullptr, 10);
      PrintStatus(db->SetRetention(t.value(),
                                   days * 24ull * 3600 * 1'000'000));
    } else if (cmd == "vacuum" && args.size() == 2) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      auto r = db->Vacuum(t.value());
      if (!r.ok()) { PrintStatus(r.status()); continue; }
      std::printf("candidates=%llu shredded=%llu held=%llu\n",
                  static_cast<unsigned long long>(r.value().candidates),
                  static_cast<unsigned long long>(r.value().shredded),
                  static_cast<unsigned long long>(r.value().held));
    } else if (cmd == "hold" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      PrintStatus(db->PlaceHold(t.value(), args[2]));
    } else if (cmd == "release" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      PrintStatus(db->ReleaseHold(t.value(), args[2]));
    } else if (cmd == "advance" && args.size() == 2) {
      uint64_t seconds = std::strtoull(args[1].c_str(), nullptr, 10);
      PrintStatus(db->AdvanceClock(seconds * 1'000'000ull));
    } else if (cmd == "audit" && args.size() >= 2 && args[1] == "status") {
      auto r = db->Certification();
      if (!r.ok()) { PrintStatus(r.status()); continue; }
      const auto& cs = r.value();
      if (!cs.enabled) {
        std::printf("incremental certification disabled\n");
        continue;
      }
      std::printf("audit epoch:        %llu\n",
                  static_cast<unsigned long long>(cs.audit_epoch));
      std::printf("certified epochs:   %llu of %llu sealed\n",
                  static_cast<unsigned long long>(cs.certified_seq),
                  static_cast<unsigned long long>(cs.sealed_seq));
      std::printf("certified L bytes:  %llu of %llu\n",
                  static_cast<unsigned long long>(cs.certified_offset),
                  static_cast<unsigned long long>(cs.log_size));
      std::printf("backlog:            %llu epoch(s), %llu byte(s)\n",
                  static_cast<unsigned long long>(cs.backlog_epochs),
                  static_cast<unsigned long long>(cs.backlog_bytes));
      std::printf("chain root:         %s\n",
                  cs.certified_seq == 0 ? "(none)"
                                        : DigestHex(cs.chain_root).c_str());
      std::printf("last incremental:   %.3fs\n",
                  cs.last_incremental_us / 1e6);
    } else if (cmd == "audit" && args.size() >= 2 && args[1] == "inc") {
      uint32_t threads = 1;
      if (args.size() >= 3) {
        threads = static_cast<uint32_t>(
            std::strtoul(args[2].c_str(), nullptr, 10));
      }
      auto r = db->AuditIncremental(threads);
      if (!r.ok()) { PrintStatus(r.status()); continue; }
      const IncrementalAuditReport& rep = r.value();
      std::printf("%s — %llu epoch(s) certified (through #%llu), "
                  "%llu records / %llu bytes replayed, %u thread%s, %.3fs\n",
                  rep.ok() ? "CERTIFIED" : "TAMPERING DETECTED",
                  static_cast<unsigned long long>(rep.epochs_certified),
                  static_cast<unsigned long long>(rep.certified_seq),
                  static_cast<unsigned long long>(rep.records_replayed),
                  static_cast<unsigned long long>(rep.bytes_replayed),
                  rep.threads_used, rep.threads_used == 1 ? "" : "s",
                  rep.seconds);
      if (rep.certified_seq > 0) {
        std::printf("  chain root: %s\n", DigestHex(rep.chain_root).c_str());
      }
      for (const auto& p : rep.problems) {
        std::printf("  - %s\n", p.c_str());
      }
    } else if (cmd == "vget" && args.size() == 3) {
      auto t = table_id(args[1]);
      if (!t.ok()) { PrintStatus(t.status()); continue; }
      auto cert = db->Certification();
      if (!cert.ok()) { PrintStatus(cert.status()); continue; }
      if (cert.value().certified_seq == 0) {
        std::printf("nothing certified yet — run 'audit inc' first\n");
        continue;
      }
      auto snap = db->BeginSnapshot();
      if (!snap.ok()) { PrintStatus(snap.status()); continue; }
      std::unique_ptr<SnapshotReader> reader(snap.value());
      std::string value;
      uint64_t commit_time = 0;
      InclusionProof proof;
      Status s = reader->GetWithProof(t.value(), args[2], &value,
                                      &commit_time, &proof);
      if (!s.ok()) { PrintStatus(s); continue; }
      // Client-side verification against the independently held root: the
      // shell plays the verifier, trusting only the certified chain root.
      Status v = VerifyInclusionProof(proof, cert.value().chain_root,
                                      t.value(), args[2], value, commit_time);
      if (v.ok()) {
        std::printf("%s\n", value.c_str());
        std::printf("  PROVEN @%llu under root %s (%zu chain epochs)\n",
                    static_cast<unsigned long long>(commit_time),
                    DigestHex(cert.value().chain_root).c_str(),
                    proof.chain.size());
      } else {
        std::printf("PROOF REJECTED: %s\n", v.ToString().c_str());
      }
    } else if (cmd == "audit") {
      uint32_t threads = 1;  // serial unless a count is given; 0 = all cores
      if (args.size() >= 2) {
        threads = static_cast<uint32_t>(
            std::strtoul(args[1].c_str(), nullptr, 10));
      }
      auto r = db->Audit(threads);
      if (!r.ok()) { PrintStatus(r.status()); continue; }
      const AuditReport& rep = r.value();
      std::printf("%s — %llu records, %llu tuples, %u thread%s, %.3fs\n",
                  rep.ok() ? "COMPLIANT" : "TAMPERING DETECTED",
                  static_cast<unsigned long long>(rep.log_records),
                  static_cast<unsigned long long>(rep.tuples_checked),
                  rep.threads_used, rep.threads_used == 1 ? "" : "s",
                  rep.timings.total_seconds);
      std::printf("  phases: summarize %.3fs, snapshot %.3fs, replay "
                  "%.3fs, final-state %.3fs, index %.3fs\n",
                  rep.timings.summarize_seconds,
                  rep.timings.snapshot_seconds, rep.timings.replay_seconds,
                  rep.timings.final_state_seconds,
                  rep.timings.index_check_seconds);
      for (const auto& p : rep.problems) {
        std::printf("  - %s\n", p.c_str());
      }
    } else if (cmd == "stats") {
      auto r = db->Stats();
      if (!r.ok()) { PrintStatus(r.status()); continue; }
      std::printf("epoch=%llu cache=%llu/%llu (%zu shards) log=%lluB "
                  "hist=%llu pages\n",
                  static_cast<unsigned long long>(r.value().epoch),
                  static_cast<unsigned long long>(r.value().cache_hits),
                  static_cast<unsigned long long>(r.value().cache_misses),
                  db->cache()->shards(),
                  static_cast<unsigned long long>(
                      r.value().compliance_log_bytes),
                  static_cast<unsigned long long>(
                      r.value().historical_pages));
      std::printf("config: write_threads=%u cache_shards=%zu shipper=%s\n",
                  db->write_threads(), db->cache()->shards(),
                  db->shipper_mode());
      if (auto* pipeline = db->write_pipeline();
          pipeline != nullptr && pipeline->scheduler() != nullptr) {
        auto* sched = pipeline->scheduler();
        std::printf("scheduler: mode=%s admitted_concurrent=%llu "
                    "serialized=%llu fallbacks=%llu conflict_waits=%llu "
                    "declared_hit_rate=%.2f\n",
                    db->scheduler_mode(),
                    static_cast<unsigned long long>(
                        sched->admitted_concurrent()),
                    static_cast<unsigned long long>(sched->serialized()),
                    static_cast<unsigned long long>(
                        sched->footprint_fallbacks()),
                    static_cast<unsigned long long>(
                        sched->conflict_waits()),
                    sched->declared_hit_rate());
      } else {
        std::printf("scheduler: mode=%s\n", db->scheduler_mode());
      }
    } else if (cmd == "metrics") {
      if (args.size() >= 2 && args[1] == "prom") {
        std::printf("%s", db->DumpMetricsPrometheus().c_str());
      } else {
        std::printf("%s\n", db->DumpMetricsJson().c_str());
      }
    } else if (cmd == "trace" && args.size() >= 2 && args[1] == "export") {
      if (args.size() != 3) {
        std::printf("usage: trace export <file>\n");
        continue;
      }
      Status s = obs::WriteChromeTraceFile(args[2]);
      if (s.ok()) {
        std::printf("wrote %s (open in chrome://tracing or "
                    "ui.perfetto.dev)\n", args[2].c_str());
      } else {
        PrintStatus(s);
      }
    } else if (cmd == "trace") {
      // trace [--type <name>] [--txn <id>] [--last n]; a bare number is
      // the legacy spelling of --last.
      size_t n = 20;
      std::string type_filter;
      uint64_t txn_filter = 0;
      bool have_txn = false;
      bool bad = false;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--type" && i + 1 < args.size()) {
          type_filter = args[++i];
        } else if (args[i] == "--txn" && i + 1 < args.size()) {
          txn_filter = std::strtoull(args[++i].c_str(), nullptr, 10);
          have_txn = true;
        } else if (args[i] == "--last" && i + 1 < args.size()) {
          n = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else if (args[i].find_first_not_of("0123456789") ==
                   std::string::npos) {
          n = std::strtoull(args[i].c_str(), nullptr, 10);
        } else {
          std::printf("trace: unrecognized '%s'\n", args[i].c_str());
          bad = true;
          break;
        }
      }
      if (bad) continue;
      auto& ring = obs::TraceRing::Global();
      auto events = ring.Snapshot();
      std::vector<const obs::TraceEvent*> matched;
      for (const auto& e : events) {
        if (!type_filter.empty() &&
            type_filter != obs::TraceEventTypeName(e.type)) {
          continue;
        }
        // Every txn-keyed event type carries the txn id in `a`.
        if (have_txn && e.a != txn_filter) continue;
        matched.push_back(&e);
      }
      size_t start = matched.size() > n ? matched.size() - n : 0;
      for (size_t i = start; i < matched.size(); ++i) {
        std::printf("%s\n", obs::FormatTraceEvent(*matched[i]).c_str());
      }
      std::printf("(%zu shown of %zu matched, %llu total, %llu dropped)\n",
                  matched.size() - start, matched.size(),
                  static_cast<unsigned long long>(ring.total()),
                  static_cast<unsigned long long>(ring.dropped()));
    } else if (cmd == "spans") {
      size_t n = 20;
      if (args.size() >= 3 && args[1] == "--last") {
        n = std::strtoull(args[2].c_str(), nullptr, 10);
      } else if (args.size() >= 2) {
        n = std::strtoull(args[1].c_str(), nullptr, 10);
      }
      auto& ring = obs::SpanRing::Global();
      auto spans = ring.Snapshot();
      size_t start = spans.size() > n ? spans.size() - n : 0;
      for (size_t i = start; i < spans.size(); ++i) {
        std::printf("%s\n", obs::FormatSpan(spans[i]).c_str());
      }
      std::printf("(%zu shown, %llu total, %llu dropped)\n",
                  spans.size() - start,
                  static_cast<unsigned long long>(ring.total()),
                  static_cast<unsigned long long>(ring.dropped()));
    } else {
      std::printf("unrecognized; type 'help'\n");
    }
  }
  Status s = db->Close();
  if (!s.ok()) PrintStatus(s);
  return 0;
}
