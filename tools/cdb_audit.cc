// Standalone external auditor — the paper's trust story (§II): "a
// prosecutor can have a company's disks removed and brought to her office
// for querying and analysis using her own DBMS software." This binary
// audits a complydb directory without loading the DBMS: it opens the raw
// database file and the WORM store, reads the (untrusted) catalog only to
// locate the Expiry/holds relations for the §VIII/§IX checks, and prints
// the full findings list.
//
//   cdb_audit <db-dir> [--key=<auditor-key>] [--epoch=<n>]
//             [--regret-minutes=<m>] [--no-read-hashes] [--sort-merge]
//             [--write-snapshot] [--threads=<n>]
//
// Exit codes (stable CLI contract, see AuditExitCode): 0 compliant,
// 1 tampering/corruption, 2 usage, 3 busy, 4 I/O or other error.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "audit/auditor.h"
#include "btree/btree.h"
#include "common/coding.h"
#include "common/clock.h"
#include "compliance/compliance_log.h"
#include "shred/expiry.h"
#include "shred/holds.h"
#include "storage/buffer_cache.h"
#include "storage/disk_manager.h"
#include "worm/worm_store.h"

using namespace complydb;

namespace {

struct Args {
  std::string dir;
  std::string key = "auditor-secret-key";
  uint64_t epoch = UINT64_MAX;  // latest
  uint64_t regret_minutes = 5;
  bool read_hashes = true;
  bool sort_merge = false;
  bool write_snapshot = false;
  uint64_t threads = 1;  // 0 = hardware_concurrency
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->dir = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--key=", 0) == 0) {
      args->key = arg.substr(6);
    } else if (arg.rfind("--epoch=", 0) == 0) {
      args->epoch = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--regret-minutes=", 0) == 0) {
      args->regret_minutes = std::strtoull(arg.c_str() + 17, nullptr, 10);
    } else if (arg == "--no-read-hashes") {
      args->read_hashes = false;
    } else if (arg == "--sort-merge") {
      args->sort_merge = true;
    } else if (arg == "--write-snapshot") {
      args->write_snapshot = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      args->threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Reads the (untrusted) catalog straight from the meta page; the audit
// itself cross-validates every tree it names.
Status LoadCatalogTrees(BufferCache* cache,
                        std::map<std::string, std::pair<uint32_t, PageId>>*
                            out) {
  Page* meta = nullptr;
  CDB_RETURN_IF_ERROR(cache->FetchPage(kMetaPage, &meta));
  PageGuard guard(cache, kMetaPage, meta);
  if (meta->type() != PageType::kMeta || meta->slot_count() == 0) {
    return Status::OK();
  }
  Slice rec = meta->RecordAt(0);
  Decoder dec(Slice(rec.data() + 2, rec.size() - 2));
  uint32_t count = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint32_t tree_id = 0;
    uint32_t root = 0;
    CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&name));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&tree_id));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&root));
    (*out)[name] = {tree_id, root};
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: cdb_audit <db-dir> [--key=K] [--epoch=N] "
                 "[--regret-minutes=M] [--no-read-hashes] [--sort-merge] "
                 "[--write-snapshot] [--threads=N]\n");
    return kAuditExitUsage;
  }

  SystemClock clock;
  auto worm = WormStore::Open(args.dir + "/worm", &clock);
  if (!worm.ok()) {
    std::fprintf(stderr, "worm store: %s\n",
                 worm.status().ToString().c_str());
    return AuditExitCodeForStatus(worm.status());
  }
  std::unique_ptr<WormStore> worm_store(worm.value());

  auto disk = DiskManager::Open(args.dir + "/data.db");
  if (!disk.ok()) {
    std::fprintf(stderr, "database: %s\n", disk.status().ToString().c_str());
    return AuditExitCodeForStatus(disk.status());
  }
  std::unique_ptr<DiskManager> disk_mgr(disk.value());

  // Latest epoch = highest L_<n> on WORM (the trusted namespace).
  uint64_t epoch = args.epoch;
  if (epoch == UINT64_MAX) {
    bool found = false;
    for (const auto& name : worm_store->ListPrefix("L_")) {
      uint64_t e = std::strtoull(name.c_str() + 2, nullptr, 10);
      epoch = found ? std::max(epoch, e) : e;
      found = true;
    }
    if (!found) {
      std::fprintf(stderr, "no compliance log found on WORM\n");
      return kAuditExitIoError;
    }
  }

  // Locate the Expiry and holds relations for the §VIII/§IX checks.
  BufferCache resolver_cache(disk_mgr.get(), 128);
  std::map<std::string, std::pair<uint32_t, PageId>> catalog;
  std::unique_ptr<Btree> expiry_tree;
  std::unique_ptr<Btree> holds_tree;
  std::unique_ptr<ExpiryPolicy> expiry;
  std::unique_ptr<LitigationHolds> holds;
  if (LoadCatalogTrees(&resolver_cache, &catalog).ok()) {
    BtreeEnv env;
    env.cache = &resolver_cache;
    auto it = catalog.find("__expiry");
    if (it != catalog.end()) {
      expiry_tree = std::make_unique<Btree>(env, it->second.first,
                                            it->second.second);
      expiry = std::make_unique<ExpiryPolicy>(expiry_tree.get());
    }
    it = catalog.find("__holds");
    if (it != catalog.end()) {
      holds_tree = std::make_unique<Btree>(env, it->second.first,
                                           it->second.second);
      holds = std::make_unique<LitigationHolds>(holds_tree.get());
    }
  }

  AuditOptions opts;
  opts.auditor_key = args.key;
  opts.verify_read_hashes = args.read_hashes;
  opts.identity_hash_check = true;
  opts.sort_merge_check = args.sort_merge;
  opts.regret_interval_micros = args.regret_minutes * 60ull * 1'000'000;
  opts.wal_path = args.dir + "/txn.wal";
  opts.num_threads = static_cast<uint32_t>(args.threads);
  if (expiry != nullptr) {
    ExpiryPolicy* e = expiry.get();
    opts.retention_resolver = [e](uint32_t tree_id, uint64_t at_time) {
      return e->At(tree_id, at_time);
    };
  }
  if (holds != nullptr) {
    LitigationHolds* h = holds.get();
    opts.hold_resolver = [h](uint32_t tree_id, const std::string& key,
                             uint64_t at_time) {
      return h->IsHeld(tree_id, key, at_time);
    };
  }

  Auditor auditor(opts, worm_store.get(), disk_mgr.get());
  auto report = auditor.Audit(epoch, args.write_snapshot);
  if (!report.ok()) {
    std::fprintf(stderr, "audit error: %s\n",
                 report.status().ToString().c_str());
    return AuditExitCodeForStatus(report.status());
  }
  const AuditReport& r = report.value();
  std::printf("epoch:               %llu\n",
              static_cast<unsigned long long>(epoch));
  std::printf("log records:         %llu\n",
              static_cast<unsigned long long>(r.log_records));
  std::printf("pages checked:       %llu\n",
              static_cast<unsigned long long>(r.pages_checked));
  std::printf("tuples checked:      %llu\n",
              static_cast<unsigned long long>(r.tuples_checked));
  std::printf("read hashes checked: %llu\n",
              static_cast<unsigned long long>(r.read_hashes_checked));
  std::printf("shreds verified:     %llu\n",
              static_cast<unsigned long long>(r.shreds_verified));
  std::printf("migrations verified: %llu\n",
              static_cast<unsigned long long>(r.migrations_verified));
  std::printf("threads:             %u\n", r.threads_used);
  std::printf("time:                %.3fs (snapshot %.3f, replay %.3f, "
              "final %.3f, index %.3f)\n",
              r.timings.total_seconds, r.timings.snapshot_seconds,
              r.timings.replay_seconds, r.timings.final_state_seconds,
              r.timings.index_check_seconds);
  if (r.ok()) {
    std::printf("verdict:             COMPLIANT\n");
    return kAuditExitCompliant;
  }
  std::printf("verdict:             TAMPERING DETECTED (%zu findings)\n",
              r.problems.size());
  for (const auto& p : r.problems) {
    std::printf("  - %s\n", p.c_str());
  }
  return kAuditExitTampered;
}
