// Inspect a complydb directory: list tables, dump current rows or full
// version histories, and show compliance-log statistics.
//
//   cdb_dump <db-dir> tables
//   cdb_dump <db-dir> scan <table> [limit]
//   cdb_dump <db-dir> history <table> <key>
//   cdb_dump <db-dir> log [limit]
//   cdb_dump <db-dir> stats

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "crypto/sha256.h"
#include "db/compliant_db.h"

using namespace complydb;

namespace {

const char* CRecordName(CRecordType type) {
  switch (type) {
    case CRecordType::kNewTuple: return "NEW_TUPLE";
    case CRecordType::kStampTrans: return "STAMP_TRANS";
    case CRecordType::kAbort: return "ABORT";
    case CRecordType::kUndo: return "UNDO";
    case CRecordType::kReadHash: return "READ";
    case CRecordType::kPageSplit: return "PAGE_SPLIT";
    case CRecordType::kRootGrow: return "ROOT_GROW";
    case CRecordType::kMigrate: return "MIGRATE";
    case CRecordType::kShredded: return "SHREDDED";
    case CRecordType::kStartRecovery: return "START_RECOVERY";
    case CRecordType::kHeartbeat: return "HEARTBEAT";
    case CRecordType::kStampPage: return "STAMP_PAGE";
    case CRecordType::kNewTree: return "NEW_TREE";
  }
  return "?";
}

std::string Printable(const std::string& s, size_t max = 48) {
  std::string out;
  for (char c : s) {
    if (out.size() >= max) {
      out += "...";
      break;
    }
    if (c >= 0x20 && c < 0x7f) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: cdb_dump <db-dir> tables\n"
                 "       cdb_dump <db-dir> scan <table> [limit]\n"
                 "       cdb_dump <db-dir> history <table> <key>\n"
                 "       cdb_dump <db-dir> log [limit]\n");
    return 2;
  }
  DbOptions options;
  options.dir = argv[1];
  options.read_only = true;  // inspection must not perturb the evidence
  auto open = CompliantDB::Open(options);
  if (!open.ok()) {
    std::fprintf(stderr, "open: %s\n", open.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<CompliantDB> db(open.value());
  std::string command = argv[2];

  if (command == "tables") {
    for (const auto& name : db->ListTables()) {
      auto id = db->GetTable(name);
      if (!id.ok()) continue;
      auto stats = db->tree(id.value())->CountPages();
      size_t tuples = 0;
      (void)db->tree(id.value())->ScanAll([&](PageId, const TupleData&) {
        ++tuples;
        return Status::OK();
      });
      std::printf("%-24s id=%u  leaf_pages=%zu  versions=%zu\n",
                  name.c_str(), id.value(),
                  stats.ok() ? stats.value().leaf_pages : 0, tuples);
    }
  } else if (command == "scan" && argc >= 4) {
    auto id = db->GetTable(argv[3]);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 2;
    }
    size_t limit = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 50;
    size_t shown = 0;
    (void)db->ScanCurrent(id.value(), "", "", [&](const TupleData& t) {
      if (shown++ >= limit) return Status::Busy("stop");
      std::printf("%-32s = %s  (commit %llu)\n", Printable(t.key).c_str(),
                  Printable(t.value).c_str(),
                  static_cast<unsigned long long>(t.start));
      return Status::OK();
    });
    std::printf("(%zu rows shown)\n", shown > limit ? limit : shown);
  } else if (command == "history" && argc >= 5) {
    auto id = db->GetTable(argv[3]);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 2;
    }
    std::vector<TupleData> versions;
    Status s = db->GetHistory(id.value(), argv[4], &versions);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    for (const auto& v : versions) {
      std::printf("start=%llu %s %s %s\n",
                  static_cast<unsigned long long>(v.start),
                  v.stamped ? "stamped " : "unstamped",
                  v.eol ? "DELETED" : Printable(v.value).c_str(),
                  v.eol ? "(end of life)" : "");
    }
    std::printf("(%zu versions)\n", versions.size());
  } else if (command == "log") {
    size_t limit = argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 50;
    auto* logger = db->compliance_logger();
    if (logger->log() == nullptr) {
      std::fprintf(stderr, "compliance logging disabled\n");
      return 2;
    }
    size_t shown = 0;
    std::map<std::string, size_t> counts;
    (void)logger->log()->Scan([&](const CRecord& rec, uint64_t off) {
      ++counts[CRecordName(rec.type)];
      if (shown++ < limit) {
        std::printf("@%-8llu %-14s tree=%u pgno=%u txn=%llu commit=%llu %s\n",
                    static_cast<unsigned long long>(off),
                    CRecordName(rec.type), rec.tree_id, rec.pgno,
                    static_cast<unsigned long long>(rec.txn_id),
                    static_cast<unsigned long long>(rec.commit_time),
                    Printable(rec.key, 24).c_str());
      }
      return Status::OK();
    });
    std::printf("--- totals (epoch %llu, %llu bytes) ---\n",
                static_cast<unsigned long long>(db->epoch()),
                static_cast<unsigned long long>(logger->log()->size()));
    for (const auto& [name, count] : counts) {
      std::printf("%-16s %zu\n", name.c_str(), count);
    }
  } else if (command == "stats") {
    auto stats = db->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 2;
    }
    const auto& st = stats.value();
    std::printf("epoch:              %llu\n",
                static_cast<unsigned long long>(st.epoch));
    std::printf("cache hits/misses:  %llu / %llu (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(st.cache_hits),
                static_cast<unsigned long long>(st.cache_misses),
                st.cache_hits + st.cache_misses == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(st.cache_hits) /
                          static_cast<double>(st.cache_hits +
                                              st.cache_misses));
    std::printf("disk reads/writes:  %llu / %llu\n",
                static_cast<unsigned long long>(st.disk_reads),
                static_cast<unsigned long long>(st.disk_writes));
    std::printf("wal bytes (epoch):  %llu\n",
                static_cast<unsigned long long>(st.wal_bytes));
    std::printf("compliance log:     %llu bytes, %llu records\n",
                static_cast<unsigned long long>(st.compliance_log_bytes),
                static_cast<unsigned long long>(st.compliance_log_records));
    std::printf("historical (WORM):  %llu pages, %llu tuples\n",
                static_cast<unsigned long long>(st.historical_pages),
                static_cast<unsigned long long>(st.historical_tuples));
    std::printf("worm violations:    %llu\n",
                static_cast<unsigned long long>(st.worm_violations));
    std::printf("%-24s %8s %8s %10s\n", "table", "leaves", "inner",
                "versions");
    for (const auto& t : st.tables) {
      std::printf("%-24s %8zu %8zu %10zu\n", t.name.c_str(), t.leaf_pages,
                  t.internal_pages, t.versions);
    }
  } else {
    std::fprintf(stderr, "unknown command\n");
    return 2;
  }
  (void)db->Close();
  return 0;
}
